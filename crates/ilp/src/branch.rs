//! Branch-and-bound driver for mixed-integer programs.
//!
//! Single-threaded solves use a depth-first search over bound-tightened
//! subproblems, each relaxed and solved by the [simplex](crate::simplex)
//! module; a root diving heuristic finds an early incumbent so the LP
//! bound can prune aggressively. Multi-threaded solves (see
//! [`SolveOptions::threads`]) switch to the best-first parallel search in
//! [`crate::parallel`], where workers pull subproblems from a shared
//! bound-ordered frontier and prune against a shared incumbent.
//!
//! Every solve records [`SolveTelemetry`]: per-thread node and LP counts,
//! the incumbent-improvement timeline, and the final optimality gap.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cuts::{self, CutCounters, CutPool};
use crate::model::{Model, Sense, Solution, VarKind};
use crate::presolve::{presolve, Presolved};
use crate::simplex::{solve_lp_ext, solve_lp_tableau, Basis, LpError, LpResult, LpStats};
use crate::telemetry::{IncumbentEvent, IncumbentSource, SolveTelemetry, ThreadTelemetry};

/// Fractional root candidates initialized by reliability (strong)
/// branching — two LPs each, warm-started from the root basis.
const STRONG_BRANCH_MAX: usize = 8;
/// First node count at which the sequential search attempts node-level
/// cut separation; subsequent events at 4x intervals.
const NODE_SEP_BASE: usize = 256;
/// Maximum node-level separation events per sequential solve (each one
/// invalidates the stacked warm bases, so they are rationed).
const NODE_SEP_EVENTS: usize = 4;
/// Relative bound improvement below which the root cut loop stops.
const CUT_TAILOFF: f64 = 1e-7;

/// Knobs for [`solve_with`].
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Give up (returning the incumbent, if any) after this wall-clock time.
    pub time_limit: Option<Duration>,
    /// Give up after exploring this many nodes.
    pub node_limit: usize,
    /// Values within this distance of an integer count as integral.
    pub int_tol: f64,
    /// A node is pruned when its LP bound cannot beat the incumbent by
    /// more than this amount.
    pub gap_tol: f64,
    /// Relative optimality gap: additionally prune nodes whose bound is
    /// within `rel_gap * |incumbent|` of the incumbent. Zero for exact
    /// proofs; compilers use ~1e-6 (a millionth of the utility).
    pub rel_gap: f64,
    /// Maximum depth of the root diving heuristic (0 disables it).
    pub dive_limit: usize,
    /// Optional warm-start assignment (one value per variable). If it is
    /// feasible for the model it seeds the incumbent, activating bound
    /// pruning from the first node.
    pub warm_start: Option<Vec<f64>>,
    /// Worker threads for the branch and bound. `0` means "use all
    /// available parallelism" (the default); `1` reproduces the
    /// sequential depth-first search exactly — same node order, same
    /// node count, same answer as before threading existed.
    pub threads: usize,
    /// When solving in parallel, make tie-breaking independent of thread
    /// scheduling: workers synchronize on batched rounds and incumbent
    /// updates apply in a fixed order, so the returned layout is a pure
    /// function of (model, options, threads). Costs a synchronization
    /// barrier per round; disable for maximum throughput when
    /// reproducibility does not matter.
    pub deterministic: bool,
    /// Warm-start each node's LP from its parent's optimal basis and
    /// re-optimize with the dual simplex (on by default — typically an
    /// order of magnitude fewer pivots per node). The search still visits
    /// nodes in the same order and returns the same answer; set `false`
    /// to reproduce the historical cold-solve arithmetic exactly.
    pub warm_lp: bool,
    /// Run a local-branching improvement pass between the root phase and
    /// the exact tree search: restrict the model to a Hamming ball of
    /// radius [`SolveOptions::local_branch_radius`] around the incumbent's
    /// binary assignment and solve that (much smaller) neighborhood with a
    /// bounded sub-search. Off by default; intended for large joint
    /// (multi-tenant) models where the exact search alone dives slowly.
    pub local_branch: bool,
    /// Hamming-ball radius for local branching: how many binary variables
    /// may flip relative to the incumbent.
    pub local_branch_radius: u32,
    /// Node budget for the local-branching sub-search.
    pub local_branch_nodes: usize,
    /// Run the cutting-plane engine (on by default): Gomory mixed-integer
    /// cuts from the simplex tableau and knapsack cover cuts from
    /// capacity rows, separated in rounds at the root (and sparingly at
    /// tree nodes in the sequential search), pooled, and activated by
    /// violation under a budget. Cuts tighten the LP relaxation so the
    /// tree search needs fewer nodes; `false` reproduces the historical
    /// plain branch-and-bound byte-for-byte.
    pub cuts: bool,
    /// Branch on pseudocost scores (on by default), reliability-
    /// initialized by bounded strong branching at the root, instead of
    /// the historical most-fractional rule. `false` reproduces the
    /// historical variable selection byte-for-byte.
    pub pseudocost: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            time_limit: Some(Duration::from_secs(300)),
            node_limit: 200_000,
            int_tol: 1e-6,
            gap_tol: 1e-6,
            rel_gap: 0.0,
            dive_limit: 400,
            warm_start: None,
            threads: 0,
            deterministic: true,
            warm_lp: true,
            local_branch: false,
            local_branch_radius: 10,
            local_branch_nodes: 1_000,
            cuts: true,
            pseudocost: true,
        }
    }
}

impl SolveOptions {
    /// Resolve the `threads` knob: `0` becomes the machine's available
    /// parallelism, anything else is taken literally (min 1).
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n.max(1),
        }
    }
}

/// Final status of a MIP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// The returned solution is proven optimal.
    Optimal,
    /// A feasible solution was found but a limit stopped the proof.
    Feasible,
    /// No integral assignment satisfies the constraints.
    Infeasible,
    /// The relaxation (and the MIP) is unbounded.
    Unbounded,
    /// A limit was reached before any feasible solution was found.
    Unknown,
}

/// Outcome of [`solve`] / [`solve_with`].
#[derive(Debug, Clone)]
pub struct MipOutcome {
    pub status: SolveStatus,
    /// Best solution found (present for `Optimal` and `Feasible`).
    pub solution: Option<Solution>,
    /// Branch-and-bound nodes explored (all threads).
    pub nodes: usize,
    /// Total LP relaxations solved (including heuristic dives).
    pub lp_solves: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Per-thread counts, incumbent timeline, final gap.
    pub telemetry: SolveTelemetry,
}

/// Solve with default options.
pub fn solve(model: &Model) -> Result<MipOutcome, LpError> {
    solve_with(model, &SolveOptions::default())
}

pub(crate) struct Node {
    pub bounds: Vec<(f64, f64)>,
    /// LP bound inherited from the parent (in "higher is better" score).
    pub parent_score: f64,
    /// The parent's optimal basis, shared by both children (and across
    /// the parallel frontier). `None` at the root or when the parent's
    /// basis was not representable; ignored when `warm_lp` is off.
    pub basis: Option<Arc<Basis>>,
    /// How this node was created, for pseudocost updates once its LP is
    /// solved. `None` at the root; carried but unused when
    /// `SolveOptions::pseudocost` is off.
    pub branch: Option<BranchInfo>,
}

/// Branching decision that created a node: variable, fractional distance
/// the bound moved (`f` for the down child, `1 − f` for up), direction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BranchInfo {
    pub var: usize,
    pub dist: f64,
    pub up: bool,
}

/// Per-variable pseudocost statistics: observed objective degradation per
/// unit of bound movement, kept separately for the down and up children.
/// Variables without observations fall back to the average over
/// initialized ones (or 1.0 when nothing is initialized yet), which
/// reduces the selection to most-fractional until data arrives.
#[derive(Debug, Clone)]
pub(crate) struct Pseudocosts {
    dn_sum: Vec<f64>,
    dn_n: Vec<u32>,
    up_sum: Vec<f64>,
    up_n: Vec<u32>,
}

impl Pseudocosts {
    pub fn new(num_vars: usize) -> Self {
        Pseudocosts {
            dn_sum: vec![0.0; num_vars],
            dn_n: vec![0; num_vars],
            up_sum: vec![0.0; num_vars],
            up_n: vec![0; num_vars],
        }
    }

    /// Record one observation: branching `var` in `up` direction cost
    /// `per_unit` objective per unit of bound movement.
    pub fn record(&mut self, var: usize, up: bool, per_unit: f64) {
        if up {
            self.up_sum[var] += per_unit;
            self.up_n[var] += 1;
        } else {
            self.dn_sum[var] += per_unit;
            self.dn_n[var] += 1;
        }
    }

    fn averages(&self) -> (f64, f64) {
        let mean = |sums: &[f64], ns: &[u32]| {
            let (mut s, mut n) = (0.0f64, 0u64);
            for (v, &c) in sums.iter().zip(ns) {
                if c > 0 {
                    s += v / c as f64;
                    n += 1;
                }
            }
            if n > 0 { s / n as f64 } else { 1.0 }
        };
        (mean(&self.dn_sum, &self.dn_n), mean(&self.up_sum, &self.up_n))
    }

    /// Pseudocost branching: among fractional integer variables, pick the
    /// one with the largest product of estimated down/up degradations.
    /// Branch priority and the binaries-first class still dominate, like
    /// the historical most-fractional rule; degradation ties (common when
    /// every observed move was degenerate) fall back to fractionality, so
    /// zero information reduces the rule to most-fractional, and exact
    /// ties keep the lowest index.
    pub fn pick(&self, ctx: &SearchCtx<'_>, x: &[f64], tol: f64) -> Option<(usize, f64)> {
        let (avg_dn, avg_up) = self.averages();
        let mut best: Option<(usize, (i32, u8, f64, f64))> = None;
        for &j in &ctx.int_vars {
            let f = (x[j] - x[j].round()).abs();
            if f > tol {
                let var = ctx.model.var(crate::VarId(j));
                let class = match var.kind {
                    VarKind::Binary => 0u8,
                    _ => 1,
                };
                let fr = x[j] - x[j].floor();
                let dn = if self.dn_n[j] > 0 { self.dn_sum[j] / self.dn_n[j] as f64 } else { avg_dn };
                let up = if self.up_n[j] > 0 { self.up_sum[j] / self.up_n[j] as f64 } else { avg_up };
                let score = (dn * fr).max(1e-6) * (up * (1.0 - fr)).max(1e-6);
                let fr_score = 0.5 - (fr - 0.5).abs();
                let key = (-var.branch_priority, class, -score, -fr_score);
                match &best {
                    Some((_, bk)) if key >= *bk => {}
                    _ => best = Some((j, key)),
                }
            }
        }
        best.map(|(j, _)| (j, x[j]))
    }
}

/// State of the cut-and-branch engine threaded through the searches:
/// the cut-extended model the LPs solve against, the cut pool, shared
/// pseudocost statistics, and the engine counters. Empty (and inert)
/// when `SolveOptions { cuts: false, pseudocost: false }`.
pub(crate) struct SearchAux {
    /// The original model plus activated cut rows; `None` while no cut
    /// has been activated (LPs then solve the original model).
    pub cut_model: Option<Model>,
    /// Separated-but-inactive cuts, selectable at later events.
    pub pool: CutPool,
    /// Pseudocost statistics; `Some` iff `SolveOptions::pseudocost`.
    pub pseudo: Option<Pseudocosts>,
    pub counters: CutCounters,
}

impl SearchAux {
    pub fn new(num_vars: usize, opts: &SolveOptions) -> Self {
        SearchAux {
            cut_model: None,
            pool: CutPool::default(),
            pseudo: opts.pseudocost.then(|| Pseudocosts::new(num_vars)),
            counters: CutCounters::default(),
        }
    }

    /// Record a pseudocost observation for a solved child node.
    pub fn observe(&mut self, node_branch: Option<BranchInfo>, parent_score: f64, score: f64) {
        if let (Some(pc), Some(b)) = (self.pseudo.as_mut(), node_branch) {
            if b.dist > 1e-6 {
                let per_unit = (parent_score - score).max(0.0) / b.dist;
                pc.record(b.var, b.up, per_unit);
                self.counters.pseudocost_updates += 1;
            }
        }
    }

    /// Variable selection: pseudocost when enabled, else the historical
    /// most-fractional rule.
    pub fn pick(&self, ctx: &SearchCtx<'_>, x: &[f64], tol: f64) -> Option<(usize, f64)> {
        match &self.pseudo {
            Some(pc) => pc.pick(ctx, x, tol),
            None => ctx.pick_branch_var(x, tol),
        }
    }
}

/// Accumulated LP work counters for one worker (pivots, refactorizations,
/// and warm/fallback solve counts), folded into [`ThreadTelemetry`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LpWork {
    pub pivots: usize,
    pub refactorizations: usize,
    pub warm_solves: usize,
    pub cold_fallbacks: usize,
}

impl LpWork {
    pub fn add(&mut self, s: &LpStats) {
        self.pivots += s.pivots;
        self.refactorizations += s.refactorizations;
        if s.warm {
            self.warm_solves += 1;
        }
        if s.fell_back {
            self.cold_fallbacks += 1;
        }
    }

    pub fn into_thread(self, thread: usize, nodes: usize, lp_solves: usize) -> ThreadTelemetry {
        ThreadTelemetry {
            thread,
            nodes,
            lp_solves,
            pivots: self.pivots,
            refactorizations: self.refactorizations,
            warm_solves: self.warm_solves,
            cold_fallbacks: self.cold_fallbacks,
        }
    }
}

/// Shared per-solve context: the model, options, the sense sign that maps
/// objectives into "higher is better" scores, and the branch ordering.
pub(crate) struct SearchCtx<'a> {
    pub model: &'a Model,
    pub opts: &'a SolveOptions,
    pub sgn: f64,
    pub int_vars: Vec<usize>,
    pub start: Instant,
}

impl<'a> SearchCtx<'a> {
    pub fn new(model: &'a Model, opts: &'a SolveOptions) -> Self {
        let sgn = match model.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        // Integral variables, binaries first so we branch on placements
        // before memory sizes.
        let mut int_vars: Vec<usize> = model
            .vars()
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_integral())
            .map(|(j, _)| j)
            .collect();
        int_vars.sort_by_key(|&j| match model.var(crate::VarId(j)).kind {
            VarKind::Binary => 0u8,
            VarKind::Integer => 1,
            VarKind::Continuous => 2,
        });
        SearchCtx { model, opts, sgn, int_vars, start: Instant::now() }
    }

    /// Selection key: highest branch priority, then binaries before
    /// general integers, then most fractional.
    pub fn pick_branch_var(&self, x: &[f64], tol: f64) -> Option<(usize, f64)> {
        let frac_of = |v: f64| (v - v.round()).abs();
        let mut best: Option<(usize, (i32, u8, f64))> = None;
        for &j in &self.int_vars {
            let f = frac_of(x[j]);
            if f > tol {
                let var = self.model.var(crate::VarId(j));
                let class = match var.kind {
                    VarKind::Binary => 0u8,
                    _ => 1,
                };
                let fr_score = 0.5 - (x[j] - x[j].floor() - 0.5).abs();
                let key = (-var.branch_priority, class, -fr_score);
                match &best {
                    Some((_, bk)) if key >= *bk => {}
                    _ => best = Some((j, key)),
                }
            }
        }
        best.map(|(j, _)| (j, x[j]))
    }

    /// Round every integral variable to the nearest integer.
    pub fn snap(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .enumerate()
            .map(|(j, &v)| {
                if self.model.var(crate::VarId(j)).is_integral() {
                    v.round()
                } else {
                    v
                }
            })
            .collect()
    }

    /// Map an internal score back to objective units.
    pub fn score_to_objective(&self, score: f64) -> f64 {
        self.sgn * score
    }

    /// The prune threshold against an incumbent score.
    pub fn prune_gap(&self, inc_score: f64) -> f64 {
        self.opts.gap_tol.max(self.opts.rel_gap * inc_score.abs())
    }
}

/// Everything the tree search needs after the root phase: tightened
/// bounds, the root LP score, the seeded incumbent, and the LP/event
/// bookkeeping accumulated so far (all attributed to thread 0).
pub(crate) struct Prepared {
    pub root_bounds: Vec<(f64, f64)>,
    pub root_score: f64,
    pub incumbent: Option<(f64, Vec<f64>)>,
    pub lp_solves: usize,
    pub events: Vec<IncumbentEvent>,
    /// Optimal basis of the root LP, seed for warm-started children.
    pub root_basis: Option<Arc<Basis>>,
    /// LP work done during the root phase (root LP + dives).
    pub lp_work: LpWork,
}

/// Root phase shared by the sequential and parallel searches: presolve,
/// warm start, root LP, integrality shortcut, diving heuristic. Identical
/// to the historical sequential behavior (same LP counts, same `nodes`
/// values in the early returns).
enum RootPhase {
    Done(MipOutcome),
    Search(Prepared),
}

/// One root dive: repeatedly fix the branch variable to its nearest
/// integer (backtracking once to the other side on infeasibility) until
/// the LP point is integral, then return the snapped point's score if it
/// is feasible. Always solves cold so the trajectory — and therefore the
/// incumbent it finds — is a pure function of the model, independent of
/// `warm_lp` (warm dual-simplex solves are equally exact but can land on
/// different co-optimal vertices and steer the dive somewhere worse).
fn run_dive(
    ctx: &SearchCtx<'_>,
    root_bounds: &[(f64, f64)],
    root_x: &[f64],
    lp_solves: &mut usize,
    lp_work: &mut LpWork,
) -> Result<Option<(f64, Vec<f64>)>, LpError> {
    let model = ctx.model;
    let opts = ctx.opts;
    let mut dive_bounds = root_bounds.to_vec();
    let mut cur = root_x.to_vec();
    let dive_solve = |bounds: &[(f64, f64)], lp_work: &mut LpWork| -> Result<LpResult, LpError> {
        let sol = solve_lp_ext(model, bounds, None)?;
        lp_work.add(&sol.stats);
        Ok(sol.result)
    };
    for _ in 0..opts.dive_limit {
        match ctx.pick_branch_var(&cur, opts.int_tol) {
            None => {
                let vals = ctx.snap(&cur);
                if model.check_feasible(&vals, 1e-5).is_ok() {
                    let obj = model.objective_value(&vals);
                    return Ok(Some((ctx.sgn * obj, vals)));
                }
                return Ok(None);
            }
            Some((j, v)) => {
                // Round to the nearest integer and fix; on infeasibility
                // backtrack once to the other side before giving up.
                let (lo, hi) = dive_bounds[j];
                let r = v.round().clamp(lo, hi);
                dive_bounds[j] = (r, r);
                *lp_solves += 1;
                match dive_solve(&dive_bounds, lp_work)? {
                    LpResult::Optimal { x, .. } => cur = x,
                    _ => {
                        let alt = if r > v { v.floor() } else { v.ceil() };
                        let alt = alt.clamp(lo, hi);
                        if alt == r {
                            return Ok(None);
                        }
                        dive_bounds[j] = (alt, alt);
                        *lp_solves += 1;
                        match dive_solve(&dive_bounds, lp_work)? {
                            LpResult::Optimal { x, .. } => cur = x,
                            _ => return Ok(None), // both sides infeasible
                        }
                    }
                }
            }
        }
    }
    Ok(None)
}

fn root_phase(ctx: &SearchCtx<'_>) -> Result<RootPhase, LpError> {
    let model = ctx.model;
    let opts = ctx.opts;
    let threads = opts.effective_threads();
    let trivial = |nodes: usize, lp_solves: usize, work: LpWork, status: SolveStatus, start: Instant| {
        let mut telemetry = SolveTelemetry::trivial(threads, opts.deterministic);
        if let Some(t0) = telemetry.per_thread.first_mut() {
            *t0 = work.into_thread(0, nodes, lp_solves);
        }
        MipOutcome {
            status,
            solution: None,
            nodes,
            lp_solves,
            elapsed: start.elapsed(),
            telemetry,
        }
    };

    let root_bounds = match presolve(model) {
        Presolved::Bounds(b) => b,
        Presolved::Infeasible { .. } => {
            return Ok(RootPhase::Done(trivial(
                0,
                0,
                LpWork::default(),
                SolveStatus::Infeasible,
                ctx.start,
            )));
        }
    };

    let mut lp_work = LpWork::default();
    let mut lp_solves = 0usize;
    let mut events = Vec::new();
    let mut incumbent: Option<(f64, Vec<f64>)> = None;

    // Seed the incumbent from a caller-provided warm start, if feasible.
    if let Some(ws) = &opts.warm_start {
        if ws.len() != model.num_vars() {
            if std::env::var("ILP_DEBUG").is_ok() {
                eprintln!("warm start: wrong length {} vs {}", ws.len(), model.num_vars());
            }
        } else {
            match model.check_feasible(ws, 1e-5) {
                Ok(()) => {
                    let obj = model.objective_value(ws);
                    incumbent = Some((ctx.sgn * obj, ws.clone()));
                    events.push(IncumbentEvent {
                        elapsed: ctx.start.elapsed(),
                        objective: obj,
                        thread: 0,
                        source: IncumbentSource::WarmStart,
                    });
                    if std::env::var("ILP_DEBUG").is_ok() {
                        eprintln!("warm start accepted: obj {obj}");
                    }
                }
                Err(e) => {
                    if std::env::var("ILP_DEBUG").is_ok() {
                        eprintln!("warm start rejected: {e}");
                    }
                }
            }
        }
    }

    // --- Root LP (always cold: there is no prior basis) ---
    lp_solves += 1;
    let root_solve = solve_lp_ext(model, &root_bounds, None)?;
    lp_work.add(&root_solve.stats);
    let root_basis: Option<Arc<Basis>> = root_solve.basis.map(Arc::new);
    let (root_x, root_score) = match root_solve.result {
        LpResult::Infeasible => {
            return Ok(RootPhase::Done(trivial(
                1,
                lp_solves,
                lp_work,
                SolveStatus::Infeasible,
                ctx.start,
            )));
        }
        LpResult::Unbounded => {
            return Ok(RootPhase::Done(trivial(
                1,
                lp_solves,
                lp_work,
                SolveStatus::Unbounded,
                ctx.start,
            )));
        }
        LpResult::Optimal { x, obj } => (x, ctx.sgn * obj),
    };

    // Integral already?
    if ctx.pick_branch_var(&root_x, opts.int_tol).is_none() {
        let vals = ctx.snap(&root_x);
        if model.check_feasible(&vals, 1e-5).is_ok() {
            let obj = model.objective_value(&vals);
            let mut out = trivial(1, lp_solves, lp_work, SolveStatus::Optimal, ctx.start);
            out.solution = Some(Solution { values: vals, objective: obj });
            out.telemetry.incumbents.push(IncumbentEvent {
                elapsed: ctx.start.elapsed(),
                objective: obj,
                thread: 0,
                source: IncumbentSource::Node,
            });
            out.telemetry.best_bound = Some(obj);
            out.telemetry.set_gap(Some(obj));
            return Ok(RootPhase::Done(out));
        }
    }

    // --- Root diving heuristic for an early incumbent ---
    // Skipped entirely when the seeded incumbent already closes the root
    // gap (a cross-solve warm start re-solving a sweep point needs only
    // the root LP). Otherwise the dive always runs with *cold* LP
    // arithmetic, even under `warm_lp`: warm and cold solves are both
    // exact but can land on different co-optimal vertices, so a
    // basis-chained warm dive follows a different trajectory and
    // sometimes ends at a strictly worse incumbent (the Precision
    // regression — warm left the root gap open and branched for ~27
    // nodes where cold closed at the root). A cold dive makes the root
    // phase a pure function of the model, identical in both
    // configurations; `warm_lp` keeps its payoff where it cannot change
    // the outcome, re-optimizing tree-node LPs from parent bases.
    if opts.dive_limit > 0 {
        let gap_closed = incumbent
            .as_ref()
            .is_some_and(|(s, _)| root_score <= *s + ctx.prune_gap(*s));
        if !gap_closed {
            if let Some((score, vals)) =
                run_dive(ctx, &root_bounds, &root_x, &mut lp_solves, &mut lp_work)?
            {
                if incumbent.as_ref().is_none_or(|(b, _)| score > *b) {
                    events.push(IncumbentEvent {
                        elapsed: ctx.start.elapsed(),
                        objective: ctx.score_to_objective(score),
                        thread: 0,
                        source: IncumbentSource::Dive,
                    });
                    incumbent = Some((score, vals));
                }
            }
        }
    }

    Ok(RootPhase::Search(Prepared {
        root_bounds,
        root_score,
        incumbent,
        lp_solves,
        events,
        root_basis,
        lp_work,
    }))
}

/// Solve `model` to proven optimality (subject to limits).
pub fn solve_with(model: &Model, opts: &SolveOptions) -> Result<MipOutcome, LpError> {
    let ctx = SearchCtx::new(model, opts);
    let mut prepared = match root_phase(&ctx)? {
        RootPhase::Done(out) => return Ok(out),
        RootPhase::Search(p) => p,
    };
    if opts.local_branch {
        local_branch_improve(&ctx, &mut prepared)?;
    }
    let mut aux = SearchAux::new(model.num_vars(), opts);
    if opts.cuts && !root_gap_closed(&ctx, &prepared) {
        run_cut_loop(&ctx, &mut prepared, &mut aux)?;
    }
    if opts.pseudocost && !root_gap_closed(&ctx, &prepared) {
        reliability_init(&ctx, &mut prepared, &mut aux)?;
    }
    if opts.effective_threads() <= 1 {
        solve_sequential(&ctx, prepared, aux)
    } else {
        crate::parallel::solve_parallel(&ctx, prepared, aux)
    }
}

/// Whether the incumbent already closes the root gap — then the tree
/// search terminates immediately and root cut/strong-branching work would
/// be pure overhead (the common case for warm-started re-solves).
fn root_gap_closed(ctx: &SearchCtx<'_>, prepared: &Prepared) -> bool {
    prepared
        .incumbent
        .as_ref()
        .is_some_and(|(s, _)| prepared.root_score <= *s + ctx.prune_gap(*s))
}

/// Root cut loop: separate Gomory and cover cuts at the (cut-extended)
/// root LP optimum, activate the most violated pool cuts under the
/// activation budget, re-solve, and repeat until no violated cut remains,
/// the bound tails off, or the round budget is exhausted. The LP model
/// grows monotonically; the incumbent is always validated against the
/// original model, so cuts tighten the relaxation without touching
/// correctness.
fn run_cut_loop(
    ctx: &SearchCtx<'_>,
    prepared: &mut Prepared,
    aux: &mut SearchAux,
) -> Result<(), LpError> {
    let opts = ctx.opts;
    let int_mask: Vec<bool> = ctx.model.vars().iter().map(|v| v.is_integral()).collect();
    let orig_rows = ctx.model.num_constraints();
    let mut applied_seq = 0usize;
    let mut prev_score = prepared.root_score;
    let mut stalls = 0u32;
    let saved_basis = prepared.root_basis.clone();
    let saved_score = prepared.root_score;
    for round in 0..cuts::MAX_CUT_ROUNDS {
        let lp_model = aux.cut_model.as_ref().unwrap_or(ctx.model);
        let warm = if opts.warm_lp { prepared.root_basis.as_deref() } else { None };
        prepared.lp_solves += 1;
        let tab = solve_lp_tableau(
            lp_model,
            &prepared.root_bounds,
            warm,
            &int_mask,
            opts.int_tol,
            cuts::GOMORY_ROWS_PER_ROUND,
        )?;
        prepared.lp_work.add(&tab.stats);
        let (x, score) = match &tab.result {
            // Cuts are valid for every integer point, so an infeasible or
            // unbounded cut LP here is numerical trouble, not a proof:
            // throw the cuts away and search the original relaxation.
            LpResult::Infeasible | LpResult::Unbounded => {
                aux.cut_model = None;
                prepared.root_basis = saved_basis;
                prepared.root_score = saved_score;
                return Ok(());
            }
            LpResult::Optimal { x, obj } => (x.clone(), ctx.sgn * obj),
        };
        prepared.root_basis = tab.basis.clone().map(Arc::new);
        prepared.root_score = prepared.root_score.min(score);
        // Integral cut-LP optimum: feasible for the original model means
        // the gap is closed and the search below will only confirm it.
        if ctx.pick_branch_var(&x, opts.int_tol).is_none() {
            let vals = ctx.snap(&x);
            if ctx.model.check_feasible(&vals, 1e-5).is_ok() {
                let s = ctx.sgn * ctx.model.objective_value(&vals);
                if prepared.incumbent.as_ref().is_none_or(|(b, _)| s > *b + 1e-12) {
                    prepared.events.push(IncumbentEvent {
                        elapsed: ctx.start.elapsed(),
                        objective: ctx.score_to_objective(s),
                        thread: 0,
                        source: IncumbentSource::CutRound,
                    });
                    prepared.incumbent = Some((s, vals));
                }
            }
            break;
        }
        if root_gap_closed(ctx, prepared) {
            break;
        }
        // Tail-off: two consecutive rounds without meaningful bound
        // movement mean further rounds only bloat the LP.
        if round > 0 {
            if prev_score - score < CUT_TAILOFF * score.abs().max(1.0) {
                stalls += 1;
                if stalls >= 2 {
                    break;
                }
            } else {
                stalls = 0;
            }
        }
        prev_score = score;
        if round + 1 == cuts::MAX_CUT_ROUNDS {
            break; // no point separating cuts the loop will never solve
        }
        for cut in cuts::separate_gomory(lp_model, &tab, &prepared.root_bounds, &int_mask) {
            if aux.pool.offer(cut) {
                aux.counters.separated += 1;
            }
        }
        for cut in cuts::separate_covers(lp_model, orig_rows, &x, &prepared.root_bounds, &int_mask)
        {
            if aux.pool.offer(cut) {
                aux.counters.separated += 1;
            }
        }
        let picked = aux.pool.select(&x, cuts::ACTIVATION_BUDGET, &mut aux.counters);
        if picked.is_empty() {
            break;
        }
        let work = aux.cut_model.get_or_insert_with(|| ctx.model.clone());
        for cut in &picked {
            cuts::apply_cut(work, cut, applied_seq);
            applied_seq += 1;
            aux.counters.applied += 1;
        }
        // Extend the basis over the new rows (new slacks basic) so the
        // next round re-solves warm with the dual simplex.
        prepared.root_basis = prepared
            .root_basis
            .take()
            .map(|b| Arc::new(b.with_new_rows(picked.len())));
    }
    Ok(())
}

/// Reliability initialization of the pseudocosts: bounded strong
/// branching on the most fractional root candidates — both child LPs of
/// each, warm-started from the root basis — seeds the statistics the
/// tree search branches on. A child proven infeasible tightens the root
/// bound on its variable (globally valid), which can shrink the tree on
/// its own.
fn reliability_init(
    ctx: &SearchCtx<'_>,
    prepared: &mut Prepared,
    aux: &mut SearchAux,
) -> Result<(), LpError> {
    let Some(pseudo) = aux.pseudo.as_mut() else {
        return Ok(());
    };
    let opts = ctx.opts;
    let lp_model = aux.cut_model.as_ref().unwrap_or(ctx.model);
    let warm = if opts.warm_lp { prepared.root_basis.as_deref() } else { None };
    // Re-derive the root vertex (warm: typically zero pivots).
    prepared.lp_solves += 1;
    let sol = solve_lp_ext(lp_model, &prepared.root_bounds, warm)?;
    prepared.lp_work.add(&sol.stats);
    let root_basis = sol.basis.map(Arc::new).or_else(|| prepared.root_basis.clone());
    let (x, root_score) = match sol.result {
        LpResult::Optimal { x, obj } => (x, ctx.sgn * obj),
        _ => return Ok(()),
    };
    let mut cands: Vec<(f64, usize)> = ctx
        .int_vars
        .iter()
        .filter_map(|&j| {
            let f = x[j] - x[j].floor();
            (f > opts.int_tol && f < 1.0 - opts.int_tol)
                .then(|| (0.5 - (f - 0.5).abs(), j))
        })
        .collect();
    cands.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    cands.truncate(STRONG_BRANCH_MAX);
    let warm_sb = if opts.warm_lp { root_basis.as_deref() } else { None };
    for (_, j) in cands {
        let v = x[j];
        let f = v - v.floor();
        // Down child: x_j <= floor(v).
        let mut down = prepared.root_bounds.to_vec();
        down[j].1 = down[j].1.min(v.floor());
        prepared.lp_solves += 1;
        aux.counters.strong_branch_lps += 1;
        let d = solve_lp_ext(lp_model, &down, warm_sb)?;
        prepared.lp_work.add(&d.stats);
        match d.result {
            LpResult::Optimal { obj, .. } => {
                pseudo.record(j, false, (root_score - ctx.sgn * obj).max(0.0) / f.max(1e-6));
                aux.counters.pseudocost_updates += 1;
            }
            LpResult::Infeasible => {
                // No LP point below: x_j >= ceil(v) everywhere.
                let lo = v.floor() + 1.0;
                if lo <= prepared.root_bounds[j].1 {
                    prepared.root_bounds[j].0 = prepared.root_bounds[j].0.max(lo);
                }
            }
            LpResult::Unbounded => {}
        }
        // Up child: x_j >= ceil(v).
        let mut up = prepared.root_bounds.to_vec();
        up[j].0 = up[j].0.max(v.floor() + 1.0);
        prepared.lp_solves += 1;
        aux.counters.strong_branch_lps += 1;
        let u = solve_lp_ext(lp_model, &up, warm_sb)?;
        prepared.lp_work.add(&u.stats);
        match u.result {
            LpResult::Optimal { obj, .. } => {
                pseudo.record(j, true, (root_score - ctx.sgn * obj).max(0.0) / (1.0 - f).max(1e-6));
                aux.counters.pseudocost_updates += 1;
            }
            LpResult::Infeasible => {
                let hi = v.floor();
                if hi >= prepared.root_bounds[j].0 {
                    prepared.root_bounds[j].1 = prepared.root_bounds[j].1.min(hi);
                }
            }
            LpResult::Unbounded => {}
        }
    }
    Ok(())
}

/// Local-branching improvement between the root phase and the exact
/// search: restrict the model to a Hamming ball around the incumbent's
/// binary assignment and run a bounded sub-search inside it. Any
/// improvement tightens the incumbent before the exact search starts, so
/// large (joint multi-tenant) models prune from a much better bound. The
/// sub-search's LP solves are accounted like dive LPs (they are heuristic
/// work, not tree nodes); exactness is untouched because the extra
/// constraint only ever *restricts* the neighborhood the heuristic looks
/// at — the exact search still runs on the original model.
fn local_branch_improve(ctx: &SearchCtx<'_>, prepared: &mut Prepared) -> Result<(), LpError> {
    let opts = ctx.opts;
    let Some((inc_score, inc_vals)) = prepared.incumbent.clone() else {
        return Ok(());
    };
    // Nothing to improve if the root bound is already closed.
    if prepared.root_score <= inc_score + ctx.prune_gap(inc_score) {
        return Ok(());
    }
    let binaries: Vec<usize> = ctx
        .int_vars
        .iter()
        .copied()
        .filter(|&j| matches!(ctx.model.var(crate::VarId(j)).kind, VarKind::Binary))
        .collect();
    if binaries.is_empty() {
        return Ok(());
    }

    // Hamming ball:  Σ_{j: inc=0} x_j + Σ_{j: inc=1} (1 - x_j) <= radius
    // i.e.           Σ_{j: inc=0} x_j - Σ_{j: inc=1} x_j <= radius - |ones|
    let mut ball = ctx.model.clone();
    let mut lhs = crate::LinExpr::zero();
    let mut ones = 0u32;
    for &j in &binaries {
        if inc_vals[j].round() >= 1.0 {
            ones += 1;
            lhs += crate::LinExpr::term(crate::VarId(j), -1.0);
        } else {
            lhs += crate::LinExpr::term(crate::VarId(j), 1.0);
        }
    }
    ball.le(
        "local-branch-ball",
        lhs,
        opts.local_branch_radius as f64 - ones as f64,
    );

    let sub_opts = SolveOptions {
        local_branch: false,
        threads: 1,
        node_limit: opts.local_branch_nodes,
        warm_start: Some(inc_vals),
        time_limit: opts
            .time_limit
            .map(|l| l.saturating_sub(ctx.start.elapsed())),
        ..opts.clone()
    };
    let sub = solve_with(&ball, &sub_opts)?;
    prepared.lp_solves += sub.lp_solves;
    prepared.lp_work.pivots += sub.telemetry.per_thread[0].pivots;
    prepared.lp_work.refactorizations += sub.telemetry.per_thread[0].refactorizations;
    prepared.lp_work.warm_solves += sub.telemetry.per_thread[0].warm_solves;
    prepared.lp_work.cold_fallbacks += sub.telemetry.per_thread[0].cold_fallbacks;

    if let Some(sol) = sub.solution {
        let score = ctx.sgn * sol.objective;
        if score > inc_score + 1e-12 && ctx.model.check_feasible(&sol.values, 1e-5).is_ok() {
            prepared.events.push(IncumbentEvent {
                elapsed: ctx.start.elapsed(),
                objective: sol.objective,
                thread: 0,
                source: IncumbentSource::LocalBranch,
            });
            prepared.incumbent = Some((score, sol.values));
        }
    }
    Ok(())
}

/// The historical depth-first search, byte-for-byte: node order, prune
/// rules, and incumbent acceptance are unchanged from the single-threaded
/// solver, so `threads = 1` explores exactly the same tree it always did.
fn solve_sequential(
    ctx: &SearchCtx<'_>,
    prepared: Prepared,
    mut aux: SearchAux,
) -> Result<MipOutcome, LpError> {
    let model = ctx.model;
    let opts = ctx.opts;
    let Prepared {
        root_bounds,
        root_score,
        mut incumbent,
        mut lp_solves,
        mut events,
        root_basis,
        mut lp_work,
    } = prepared;

    // Node-level separation state (sequential search only): root bounds
    // keep node cuts globally valid, `int_mask` drives the tableau scan.
    let mut cut_model = aux.cut_model.take();
    let sep_root_bounds = opts.cuts.then(|| root_bounds.clone());
    let int_mask: Vec<bool> = if opts.cuts {
        model.vars().iter().map(|v| v.is_integral()).collect()
    } else {
        Vec::new()
    };
    let orig_rows = model.num_constraints();
    let mut applied_seq = aux.counters.applied;
    let mut next_sep_at = NODE_SEP_BASE;
    let mut sep_events = 0usize;

    let mut nodes = 0usize;
    let mut stack: Vec<Node> =
        vec![Node { bounds: root_bounds, parent_score: root_score, basis: root_basis, branch: None }];
    let mut proven = true;
    let mut remaining_bound: Option<f64> = None;

    while let Some(node) = stack.pop() {
        if nodes >= opts.node_limit {
            proven = false;
            stack.push(node);
            break;
        }
        if let Some(limit) = opts.time_limit {
            if ctx.start.elapsed() > limit {
                proven = false;
                stack.push(node);
                break;
            }
        }
        // Parent-bound prune (cheap, before the LP).
        if let Some((inc_score, _)) = &incumbent {
            if node.parent_score <= *inc_score + ctx.prune_gap(*inc_score) {
                continue;
            }
        }
        nodes += 1;
        lp_solves += 1;
        let warm = if opts.warm_lp { node.basis.as_deref() } else { None };
        let sol = solve_lp_ext(cut_model.as_ref().unwrap_or(model), &node.bounds, warm)?;
        lp_work.add(&sol.stats);
        // Children warm-start from this node's optimal basis; if it was
        // not representable, the grandparent's is still dual-feasible.
        let mut child_basis = sol.basis.map(Arc::new).or(node.basis);
        let (x, score) = match sol.result {
            LpResult::Infeasible => continue,
            LpResult::Unbounded => {
                let mut telemetry = SolveTelemetry::trivial(1, opts.deterministic);
                telemetry.per_thread[0] = lp_work.into_thread(0, nodes, lp_solves);
                telemetry.incumbents = events;
                telemetry.cuts = aux.counters;
                return Ok(MipOutcome {
                    status: SolveStatus::Unbounded,
                    solution: None,
                    nodes,
                    lp_solves,
                    elapsed: ctx.start.elapsed(),
                    telemetry,
                });
            }
            LpResult::Optimal { x, obj } => (x, ctx.sgn * obj),
        };
        aux.observe(node.branch, node.parent_score, score);
        if let Some((inc_score, _)) = &incumbent {
            if score <= *inc_score + ctx.prune_gap(*inc_score) {
                continue;
            }
        }
        // Node-level separation: at geometrically spaced node counts,
        // re-derive the tableau at this vertex (warm: typically zero
        // pivots) and harvest fresh cuts for the shared LP model.
        if opts.cuts && sep_events < NODE_SEP_EVENTS && nodes >= next_sep_at {
            sep_events += 1;
            next_sep_at *= 4;
            let warm = if opts.warm_lp { child_basis.as_deref() } else { None };
            lp_solves += 1;
            let lpm = cut_model.as_ref().unwrap_or(model);
            let tab = solve_lp_tableau(
                lpm,
                &node.bounds,
                warm,
                &int_mask,
                opts.int_tol,
                cuts::GOMORY_ROWS_PER_ROUND,
            )?;
            lp_work.add(&tab.stats);
            if let LpResult::Optimal { x: tx, .. } = &tab.result {
                let rb = sep_root_bounds.as_deref().unwrap_or(&node.bounds);
                for cut in cuts::separate_gomory(lpm, &tab, rb, &int_mask) {
                    if aux.pool.offer(cut) {
                        aux.counters.separated += 1;
                    }
                }
                for cut in cuts::separate_covers(lpm, orig_rows, tx, rb, &int_mask) {
                    if aux.pool.offer(cut) {
                        aux.counters.separated += 1;
                    }
                }
                let picked = aux.pool.select(tx, cuts::ACTIVATION_BUDGET, &mut aux.counters);
                if !picked.is_empty() {
                    let work = cut_model.get_or_insert_with(|| model.clone());
                    for cut in &picked {
                        cuts::apply_cut(work, cut, applied_seq);
                        applied_seq += 1;
                        aux.counters.applied += 1;
                    }
                    // Keep this subtree warm across the new rows; stale
                    // bases elsewhere in the stack fall back cold.
                    child_basis = child_basis.map(|b| Arc::new(b.with_new_rows(picked.len())));
                }
            }
        }
        match aux.pick(ctx, &x, opts.int_tol) {
            None => {
                let vals = ctx.snap(&x);
                if model.check_feasible(&vals, 1e-5).is_ok() {
                    let s = ctx.sgn * model.objective_value(&vals);
                    let better = incumbent.as_ref().is_none_or(|(b, _)| s > *b + 1e-12);
                    if better {
                        events.push(IncumbentEvent {
                            elapsed: ctx.start.elapsed(),
                            objective: ctx.score_to_objective(s),
                            thread: 0,
                            source: IncumbentSource::Node,
                        });
                        incumbent = Some((s, vals));
                    }
                }
                // If snapping broke feasibility the LP point was integral
                // within tolerance but unsafe; treat as explored.
            }
            Some((j, v)) => {
                debug_assert!(
                    v >= node.bounds[j].0 - 1e-5 && v <= node.bounds[j].1 + 1e-5,
                    "LP value {} for variable {} escapes node bounds {:?}",
                    v, j, node.bounds[j]
                );
                let floor = v.floor();
                let f = v - floor;
                let mut down = node.bounds.clone();
                down[j].1 = down[j].1.min(floor);
                let mut up = node.bounds.clone();
                up[j].0 = up[j].0.max(floor + 1.0);
                let dn_branch = Some(BranchInfo { var: j, dist: f, up: false });
                let up_branch = Some(BranchInfo { var: j, dist: 1.0 - f, up: true });
                // Explore the child nearest the LP value first (pushed last).
                let (first, fb, second, sb) = if f <= 0.5 {
                    (up, up_branch, down, dn_branch)
                } else {
                    (down, dn_branch, up, up_branch)
                };
                if first[j].0 <= first[j].1 {
                    stack.push(Node {
                        bounds: first,
                        parent_score: score,
                        basis: child_basis.clone(),
                        branch: fb,
                    });
                }
                if second[j].0 <= second[j].1 {
                    stack.push(Node {
                        bounds: second,
                        parent_score: score,
                        basis: child_basis,
                        branch: sb,
                    });
                }
            }
        }
    }
    if !proven {
        // Bound on anything still unexplored (for gap reporting).
        remaining_bound = stack
            .iter()
            .map(|n| n.parent_score)
            .fold(None, |acc: Option<f64>, s| Some(acc.map_or(s, |a| a.max(s))));
    }

    let elapsed = ctx.start.elapsed();
    let mut telemetry = SolveTelemetry::trivial(1, opts.deterministic);
    telemetry.per_thread[0] = lp_work.into_thread(0, nodes, lp_solves);
    telemetry.incumbents = events;
    telemetry.cuts = aux.counters;
    finish(ctx, incumbent, proven, nodes, lp_solves, elapsed, remaining_bound, telemetry)
}

/// Assemble the final outcome from the incumbent and proof state (shared
/// by the sequential and parallel searches).
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish(
    ctx: &SearchCtx<'_>,
    incumbent: Option<(f64, Vec<f64>)>,
    proven: bool,
    nodes: usize,
    lp_solves: usize,
    elapsed: Duration,
    remaining_bound: Option<f64>,
    mut telemetry: SolveTelemetry,
) -> Result<MipOutcome, LpError> {
    match incumbent {
        Some((inc_score, values)) => {
            let objective = ctx.model.objective_value(&values);
            telemetry.best_bound = Some(if proven {
                objective
            } else {
                // The true optimum is bracketed by the incumbent and the
                // best unexplored bound.
                ctx.score_to_objective(remaining_bound.map_or(inc_score, |b| b.max(inc_score)))
            });
            telemetry.set_gap(Some(objective));
            Ok(MipOutcome {
                status: if proven { SolveStatus::Optimal } else { SolveStatus::Feasible },
                solution: Some(Solution { values, objective }),
                nodes,
                lp_solves,
                elapsed,
                telemetry,
            })
        }
        None => {
            telemetry.best_bound = remaining_bound.map(|b| ctx.score_to_objective(b));
            Ok(MipOutcome {
                status: if proven { SolveStatus::Infeasible } else { SolveStatus::Unknown },
                solution: None,
                nodes,
                lp_solves,
                elapsed,
                telemetry,
            })
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{brute_force, LinExpr, Model, Sense};

    fn assert_matches_brute_force(m: &Model) {
        let bf = brute_force(m, 5_000_000);
        let out = solve(m).expect("solve");
        match bf {
            None => assert_eq!(out.status, SolveStatus::Infeasible, "expected infeasible"),
            Some(ref_sol) => {
                assert_eq!(out.status, SolveStatus::Optimal);
                let got = out.solution.expect("solution");
                assert!(
                    (got.objective - ref_sol.objective).abs() < 1e-5,
                    "solver found {}, brute force found {}",
                    got.objective,
                    ref_sol.objective
                );
                m.check_feasible(&got.values, 1e-5).expect("solver solution feasible");
            }
        }
    }

    #[test]
    fn knapsack_small() {
        let mut m = Model::new();
        let weights = [4.0, 3.0, 5.0, 6.0, 2.0];
        let values = [7.0, 4.0, 9.0, 10.0, 3.0];
        let xs: Vec<_> = (0..5).map(|i| m.binary(format!("x{i}"))).collect();
        let mut cap = LinExpr::zero();
        let mut obj = LinExpr::zero();
        for i in 0..5 {
            cap += LinExpr::term(xs[i], weights[i]);
            obj += LinExpr::term(xs[i], values[i]);
        }
        m.le("cap", cap, 10.0);
        m.set_objective(obj, Sense::Maximize);
        assert_matches_brute_force(&m);
    }

    #[test]
    fn integer_variables_branching() {
        // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6, x,y integer >= 0.
        // LP optimum (3, 1.5); ILP optimum (3, 1) = 19? check (2,2): 18. (4,0): 20>24? 6*4=24<=24, x+2y=4<=6 -> obj 20.
        let mut m = Model::new();
        let x = m.integer("x", 0.0, 10.0);
        let y = m.integer("y", 0.0, 10.0);
        m.le("c1", LinExpr::term(x, 6.0) + LinExpr::term(y, 4.0), 24.0);
        m.le("c2", LinExpr::from(x) + LinExpr::term(y, 2.0), 6.0);
        m.set_objective(LinExpr::term(x, 5.0) + LinExpr::term(y, 4.0), Sense::Maximize);
        let out = solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert!((out.solution.unwrap().objective - 20.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_mip() {
        let mut m = Model::new();
        let x = m.binary("x");
        let y = m.binary("y");
        m.ge("ge", LinExpr::from(x) + LinExpr::from(y), 2.0);
        m.le("le", LinExpr::from(x) + LinExpr::from(y), 1.0);
        m.set_objective(LinExpr::from(x), Sense::Maximize);
        let out = solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_mip() {
        let mut m = Model::new();
        let x = m.integer("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::from(x), Sense::Maximize);
        let out = solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Unbounded);
    }

    #[test]
    fn minimization_set_cover() {
        // Min-cost cover of {1,2,3} by sets A={1,2} ($3), B={2,3} ($3), C={1,3} ($3), D={1,2,3} ($5).
        // Optimum: two of A/B/C for $6 vs D+nothing ($5)? D covers all -> $5.
        let mut m = Model::new();
        let a = m.binary("A");
        let b = m.binary("B");
        let c = m.binary("C");
        let d = m.binary("D");
        m.ge("e1", LinExpr::from(a) + LinExpr::from(c) + LinExpr::from(d), 1.0);
        m.ge("e2", LinExpr::from(a) + LinExpr::from(b) + LinExpr::from(d), 1.0);
        m.ge("e3", LinExpr::from(b) + LinExpr::from(c) + LinExpr::from(d), 1.0);
        m.set_objective(
            LinExpr::term(a, 3.0) + LinExpr::term(b, 3.0) + LinExpr::term(c, 3.0)
                + LinExpr::term(d, 5.0),
            Sense::Minimize,
        );
        let out = solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert!((out.solution.unwrap().objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn equality_linked_integers() {
        // x == 3y, maximize x with x <= 10 -> x=9, y=3.
        let mut m = Model::new();
        let x = m.integer("x", 0.0, 10.0);
        let y = m.integer("y", 0.0, 10.0);
        m.eq("link", LinExpr::from(x) - LinExpr::term(y, 3.0), 0.0);
        m.set_objective(LinExpr::from(x), Sense::Maximize);
        let out = solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        let sol = out.solution.unwrap();
        assert_eq!(sol.int_value(x), 9);
        assert_eq!(sol.int_value(y), 3);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + y, x binary, y continuous <= 1.5, x + y <= 2 -> x=1, y=1 -> 3.
        let mut m = Model::new();
        let x = m.binary("x");
        let y = m.continuous("y", 0.0, 1.5);
        m.le("cap", LinExpr::from(x) + LinExpr::from(y), 2.0);
        m.set_objective(LinExpr::term(x, 2.0) + LinExpr::from(y), Sense::Maximize);
        let out = solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        let sol = out.solution.unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6);
        assert_eq!(sol.int_value(x), 1);
        assert!((sol.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reports_feasible_or_unknown() {
        let mut m = Model::new();
        let xs: Vec<_> = (0..14).map(|i| m.binary(format!("x{i}"))).collect();
        let mut cap = LinExpr::zero();
        let mut obj = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            cap += LinExpr::term(x, (i % 5 + 1) as f64 + 0.5);
            obj += LinExpr::term(x, (i % 7 + 1) as f64 + 0.3);
        }
        m.le("cap", cap, 17.0);
        m.set_objective(obj, Sense::Maximize);
        // Historical configuration: the root cut loop can close this model
        // at the root, and the point here is the budget-limited statuses.
        let opts = SolveOptions {
            node_limit: 2,
            dive_limit: 0,
            cuts: false,
            pseudocost: false,
            ..Default::default()
        };
        let out = solve_with(&m, &opts).unwrap();
        assert!(matches!(out.status, SolveStatus::Feasible | SolveStatus::Unknown));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // stage loops mirror the math
    fn placement_like_structure() {
        // Mimic a tiny stage-placement ILP: two actions, three stages,
        // precedence a before b, maximize placements.
        let mut m = Model::new();
        let a: Vec<_> = (0..3).map(|s| m.binary(format!("a_{s}"))).collect();
        let b: Vec<_> = (0..3).map(|s| m.binary(format!("b_{s}"))).collect();
        let sum_a = LinExpr::from(a[0]) + LinExpr::from(a[1]) + LinExpr::from(a[2]);
        let sum_b = LinExpr::from(b[0]) + LinExpr::from(b[1]) + LinExpr::from(b[2]);
        m.le("a_once", sum_a.clone(), 1.0);
        m.le("b_once", sum_b.clone(), 1.0);
        // b in stage s implies a placed in an earlier stage.
        for s in 0..3 {
            let mut earlier = LinExpr::zero();
            for t in 0..s {
                earlier += LinExpr::from(a[t]);
            }
            m.le(format!("prec_{s}"), LinExpr::from(b[s]) - earlier, 0.0);
        }
        m.set_objective(sum_a + sum_b, Sense::Maximize);
        let out = solve(&m).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        let sol = out.solution.unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-6);
        // b must come strictly after a.
        let a_stage = (0..3).find(|&s| sol.int_value(a[s]) == 1).unwrap();
        let b_stage = (0..3).find(|&s| sol.int_value(b[s]) == 1).unwrap();
        assert!(a_stage < b_stage);
    }

    #[test]
    fn effective_threads_resolution() {
        let auto = SolveOptions { threads: 0, ..Default::default() };
        assert!(auto.effective_threads() >= 1);
        let one = SolveOptions { threads: 1, ..Default::default() };
        assert_eq!(one.effective_threads(), 1);
        let four = SolveOptions { threads: 4, ..Default::default() };
        assert_eq!(four.effective_threads(), 4);
    }

    #[test]
    fn sequential_solve_is_reproducible() {
        // The threads = 1 path is the historical DFS: two runs must agree
        // on everything the search determines — node count, LP count,
        // objective, and the value vector.
        let mut m = Model::new();
        let xs: Vec<_> = (0..12).map(|i| m.binary(format!("x{i}"))).collect();
        let mut cap = LinExpr::zero();
        let mut obj = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            cap += LinExpr::term(x, ((i * 3 + 2) % 7 + 1) as f64);
            obj += LinExpr::term(x, ((i * 5 + 1) % 9 + 1) as f64);
        }
        m.le("cap", cap, 15.0);
        m.set_objective(obj, Sense::Maximize);
        let opts = SolveOptions { threads: 1, ..Default::default() };
        let a = solve_with(&m, &opts).unwrap();
        let b = solve_with(&m, &opts).unwrap();
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.lp_solves, b.lp_solves);
        assert_eq!(a.solution.as_ref().unwrap().values, b.solution.as_ref().unwrap().values);
        // Sequential telemetry attributes everything to thread 0.
        assert_eq!(a.telemetry.threads, 1);
        assert_eq!(a.telemetry.per_thread[0].nodes, a.nodes);
        assert_eq!(a.telemetry.per_thread[0].lp_solves, a.lp_solves);
        assert!(a.telemetry.gap_abs.is_some());
    }

    #[test]
    fn local_branching_agrees_with_exact_search() {
        // Same answer with and without the local-branching pass; the pass
        // is a heuristic that only tightens the incumbent early.
        let mut m = Model::new();
        let xs: Vec<_> = (0..16).map(|i| m.binary(format!("x{i}"))).collect();
        let mut cap = LinExpr::zero();
        let mut obj = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            cap += LinExpr::term(x, ((i * 7 + 3) % 11 + 1) as f64);
            obj += LinExpr::term(x, ((i * 5 + 2) % 13 + 1) as f64);
        }
        m.le("cap", cap, 31.0);
        m.set_objective(obj, Sense::Maximize);
        let plain = solve_with(&m, &SolveOptions { threads: 1, ..Default::default() }).unwrap();
        let lb = solve_with(
            &m,
            &SolveOptions {
                threads: 1,
                local_branch: true,
                local_branch_radius: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(plain.status, SolveStatus::Optimal);
        assert_eq!(lb.status, SolveStatus::Optimal);
        assert!(
            (plain.solution.as_ref().unwrap().objective
                - lb.solution.as_ref().unwrap().objective)
                .abs()
                < 1e-6
        );
        // The neighborhood search never *grows* the exact tree.
        assert!(lb.nodes <= plain.nodes, "{} > {}", lb.nodes, plain.nodes);
    }

    #[test]
    fn warm_dive_sanity_check_keeps_warm_and_cold_aligned() {
        // Warm and cold solves must agree on the objective, and the cold
        // re-dive bounds warm lp_solves to at most ~2x cold's root phase.
        let mut m = Model::new();
        let xs: Vec<_> = (0..12).map(|i| m.binary(format!("x{i}"))).collect();
        let mut cap = LinExpr::zero();
        let mut obj = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            cap += LinExpr::term(x, ((i * 3 + 1) % 6 + 1) as f64);
            obj += LinExpr::term(x, ((i * 4 + 3) % 8 + 1) as f64);
        }
        m.le("cap", cap, 14.0);
        m.set_objective(obj, Sense::Maximize);
        let cold = solve_with(&m, &SolveOptions { threads: 1, warm_lp: false, ..Default::default() })
            .unwrap();
        let warm = solve_with(&m, &SolveOptions { threads: 1, warm_lp: true, ..Default::default() })
            .unwrap();
        assert_eq!(cold.status, SolveStatus::Optimal);
        assert_eq!(warm.status, SolveStatus::Optimal);
        assert!(
            (cold.solution.as_ref().unwrap().objective
                - warm.solution.as_ref().unwrap().objective)
                .abs()
                < 1e-6
        );
    }

    #[test]
    fn telemetry_records_incumbent_timeline_and_gap() {
        let mut m = Model::new();
        let xs: Vec<_> = (0..10).map(|i| m.binary(format!("x{i}"))).collect();
        let mut cap = LinExpr::zero();
        let mut obj = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            cap += LinExpr::term(x, (i % 4 + 1) as f64 + 0.5);
            obj += LinExpr::term(x, (i % 6 + 1) as f64);
        }
        m.le("cap", cap, 11.0);
        m.set_objective(obj, Sense::Maximize);
        let out = solve_with(&m, &SolveOptions { threads: 1, ..Default::default() }).unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        let tel = &out.telemetry;
        assert!(!tel.incumbents.is_empty(), "an optimal solve must log its incumbent");
        // The last incumbent is the returned solution.
        let last = tel.incumbents.last().unwrap();
        let obj_val = out.solution.as_ref().unwrap().objective;
        assert!((last.objective - obj_val).abs() < 1e-9);
        // Improvements are monotone for a maximization.
        for w in tel.incumbents.windows(2) {
            assert!(w[1].objective >= w[0].objective - 1e-12);
        }
        // Proven optimal: zero gap, bound equals the objective.
        assert_eq!(tel.best_bound, Some(obj_val));
        assert_eq!(tel.gap_abs, Some(0.0));
        let summary = tel.summary();
        assert!(summary.contains("threads: 1"), "summary was:\n{summary}");
        assert!(summary.contains("incumbents"), "summary was:\n{summary}");
    }
}


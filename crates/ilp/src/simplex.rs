//! Bounded-variable two-phase primal simplex with a warm-started dual
//! simplex for re-optimization.
//!
//! Solves the LP relaxation of a [`Model`]: maximize `c·x`
//! subject to `A x {<=,>=,==} b` and `l <= x <= u`. Variables may have
//! infinite upper bounds; lower bounds of structural variables must be
//! finite (enforced by `Model`), while slack variables may be free on one
//! side.
//!
//! Implementation notes:
//! - one slack per row converts the system to equalities; equality rows get
//!   a slack fixed to `[0, 0]`;
//! - phase 1 introduces artificial variables only for rows whose slack
//!   basis is infeasible, and minimizes their sum;
//! - the basis inverse `B^-1` is kept explicitly (dense) and updated by
//!   elementary row operations per pivot; the update skips the zero
//!   entries of the pivot row (compiler bases stay sparse for a long
//!   time), and `B^-1` is refactorized from scratch when a residual check
//!   fails;
//! - Dantzig pricing with an automatic switch to Bland's rule after a run
//!   of degenerate pivots guarantees termination;
//! - [`solve_lp_ext`] accepts an optimal [`Basis`] from a previous solve
//!   of the same model under different bounds (the branch-and-bound
//!   case). Such a basis stays *dual-feasible* after bound tightening, so
//!   a bounded-variable dual simplex re-optimizes it in a handful of
//!   pivots; any structural or numerical trouble falls back to the cold
//!   two-phase solve, so warm starting never changes what is solvable.

// Indexed `for i in 0..m` loops mirror the textbook simplex notation and
// often index several arrays in lockstep; iterator chains obscure that.
#![allow(clippy::needless_range_loop)]

use crate::model::{Cmp, Model, Sense};

/// Outcome of an LP solve.
#[derive(Debug, Clone)]
pub enum LpResult {
    /// Optimal solution: structural variable values and objective (in the
    /// model's original sense).
    Optimal { x: Vec<f64>, obj: f64 },
    Infeasible,
    Unbounded,
}

/// Hard solver failure (numerical breakdown, iteration limit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    IterationLimit,
    Numerical(String),
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::IterationLimit => write!(f, "simplex iteration limit reached"),
            LpError::Numerical(m) => write!(f, "numerical failure in simplex: {m}"),
        }
    }
}

impl std::error::Error for LpError {}

const FEAS_TOL: f64 = 1e-7;
const PIVOT_TOL: f64 = 1e-8;
const COST_TOL: f64 = 1e-7;
const DEGENERATE_SWITCH: usize = 60;
const REFRESH_PERIOD: usize = 128;
/// Dual-feasibility tolerance when validating a warm basis. Slightly
/// looser than `COST_TOL`: the parent's optimum satisfies `COST_TOL`, and
/// the refactorization adds a little noise on top.
const DUAL_FEAS_TOL: f64 = 1e-6;
/// Consecutive zero-length dual steps before the warm path gives up and
/// falls back to the cold solve (dual degeneracy stalls are rare but the
/// cold path is always available).
const DUAL_DEGENERATE_LIMIT: usize = 200;

/// Status of one variable in a [`Basis`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BStat {
    Basic,
    AtLower,
    AtUpper,
    Free,
}

/// Row cap above which a snapshot stores only variable statuses, not the
/// dense basis inverse (8 MB at 1024 rows). Beyond it a warm install pays
/// one refactorization instead; below it the install is an O(m²) copy.
const BINV_SNAPSHOT_MAX_ROWS: usize = 1024;

/// Snapshot of an optimal simplex basis: the status of every structural
/// and slack variable (`n + m` entries), plus — for models up to
/// `BINV_SNAPSHOT_MAX_ROWS` (1024) rows — the row assignment and the dense
/// basis inverse. `B^-1` depends only on the basic set and the model's
/// (bound-independent) equilibrated matrix, so a child node can install
/// the parent's inverse verbatim and skip the O(m³) refactorization that
/// would otherwise dominate a warm re-solve. Snapshots are shared across
/// a branch-and-bound frontier behind `Arc` (see `SolveOptions::warm_lp`).
#[derive(Debug, Clone, PartialEq)]
pub struct Basis {
    stat: Vec<BStat>,
    /// Basic variable of each row (the assignment `binv` corresponds to);
    /// empty when the inverse was not captured.
    rows: Vec<usize>,
    /// Dense row-major m×m basis inverse in the solver's equilibrated
    /// space; empty when not captured (then a warm install refactorizes).
    binv: Vec<f64>,
}

impl Basis {
    /// Number of variables (structural + slack) the snapshot covers.
    pub fn len(&self) -> usize {
        self.stat.len()
    }

    /// True when the snapshot covers no variables.
    pub fn is_empty(&self) -> bool {
        self.stat.is_empty()
    }

    /// Extend a snapshot to a model with `extra` rows appended (cut rows):
    /// the new slacks enter the basis, every old status is kept. The row
    /// assignment and inverse are dropped — the extended basis matrix
    /// gains off-diagonal blocks from old basic columns crossing the new
    /// rows, so a warm install pays one refactorization. The extension is
    /// dual feasible by construction (the new slacks have zero cost), so
    /// the dual simplex repairs exactly the rows the new cuts violate.
    pub(crate) fn with_new_rows(&self, extra: usize) -> Basis {
        let mut stat = self.stat.clone();
        stat.extend(std::iter::repeat_n(BStat::Basic, extra));
        Basis { stat, rows: Vec::new(), binv: Vec::new() }
    }
}

/// Work counters of one LP solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpStats {
    /// Simplex basis changes (primal and dual pivots; bound flips are not
    /// counted — they touch no basis column).
    pub pivots: usize,
    /// From-scratch rebuilds of `B^-1` (numerical-health refactorizations
    /// and warm installs whose snapshot lacked a captured inverse).
    pub refactorizations: usize,
    /// The solve started from a caller-supplied basis and finished on the
    /// dual-simplex path.
    pub warm: bool,
    /// A warm attempt was abandoned (dual-infeasible or numerically
    /// unusable basis) and the cold two-phase solve ran instead.
    pub fell_back: bool,
}

impl LpStats {
    /// Accumulate another solve's counters into this one.
    pub fn absorb(&mut self, other: &LpStats) {
        self.pivots += other.pivots;
        self.refactorizations += other.refactorizations;
        self.warm |= other.warm;
        self.fell_back |= other.fell_back;
    }
}

/// Full outcome of [`solve_lp_ext`]: the result, the optimal basis (only
/// for `Optimal` results whose basis is reusable), and work counters.
#[derive(Debug, Clone)]
pub struct LpSolve {
    pub result: LpResult,
    pub basis: Option<Basis>,
    pub stats: LpStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VStat {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Nonbasic at value zero with both bounds infinite.
    Free,
}

/// Solve the LP relaxation of `model`, with per-variable bound overrides.
///
/// `bounds[j]` replaces the bounds of structural variable `j` (branch-and-
/// bound tightens bounds this way). Integrality is ignored. The returned
/// objective is in the model's own sense.
pub fn solve_lp(model: &Model, bounds: &[(f64, f64)]) -> Result<LpResult, LpError> {
    Ok(solve_lp_ext(model, bounds, None)?.result)
}

/// Re-solve an LP from a previous optimal [`Basis`] of the same model
/// under (typically tighter) bounds. Equivalent to
/// [`solve_lp_ext`]`(model, bounds, Some(basis)).result`.
pub fn solve_lp_warm(
    model: &Model,
    bounds: &[(f64, f64)],
    basis: &Basis,
) -> Result<LpResult, LpError> {
    Ok(solve_lp_ext(model, bounds, Some(basis))?.result)
}

/// Solve the LP relaxation, optionally warm-starting from `warm`, and
/// return the result together with the optimal basis and work counters.
///
/// With `warm = Some(basis)` the solver installs the basis (reusing the
/// snapshot's captured inverse when present, else one refactorization),
/// verifies dual feasibility, and runs the bounded-variable dual simplex.
/// Any structural mismatch (stale shape,
/// wrong basic count), dual infeasibility, or numerical breakdown falls
/// back to the cold two-phase solve — warm starting can change how the
/// optimum is reached, never whether it is found.
pub fn solve_lp_ext(
    model: &Model,
    bounds: &[(f64, f64)],
    warm: Option<&Basis>,
) -> Result<LpSolve, LpError> {
    assert_eq!(bounds.len(), model.num_vars());
    let mut stats = LpStats::default();
    if let Some(basis) = warm {
        let mut sx = Simplex::build(model, bounds);
        match sx.solve_warm(basis) {
            Ok(Some(result)) => {
                stats.pivots += sx.pivots;
                stats.refactorizations += sx.refactorizations;
                stats.warm = true;
                let basis = match &result {
                    LpResult::Optimal { .. } => sx.snapshot_basis(),
                    _ => None,
                };
                return Ok(LpSolve { result, basis, stats });
            }
            // Unusable basis or numerical trouble on the warm path: count
            // the wasted work and fall through to the cold solve.
            Ok(None) | Err(_) => {
                stats.pivots += sx.pivots;
                stats.refactorizations += sx.refactorizations;
                stats.fell_back = true;
            }
        }
    }
    let (result, basis) = run_cold(model, bounds, &mut stats)?;
    Ok(LpSolve { result, basis, stats })
}

/// The cold two-phase solve with its Bland's-rule restart, accumulating
/// work counters and snapshotting the optimal basis.
fn run_cold(
    model: &Model,
    bounds: &[(f64, f64)],
    stats: &mut LpStats,
) -> Result<(LpResult, Option<Basis>), LpError> {
    let (result, sx) = run_cold_sx(model, bounds, stats)?;
    let basis = match &result {
        LpResult::Optimal { .. } => sx.snapshot_basis(),
        _ => None,
    };
    Ok((result, basis))
}

/// Cold solve returning the solver state itself, so callers can extract
/// tableau rows from the optimal basis.
fn run_cold_sx(
    model: &Model,
    bounds: &[(f64, f64)],
    stats: &mut LpStats,
) -> Result<(LpResult, Simplex), LpError> {
    let mut sx = Simplex::build(model, bounds);
    let outcome = match sx.solve() {
        Err(LpError::Numerical(_)) => {
            // Numerical breakdown (ill-conditioned basis): restart from the
            // slack basis under Bland's rule — slower, but immune to the
            // aggressive pivoting that got us here.
            stats.pivots += sx.pivots;
            stats.refactorizations += sx.refactorizations;
            sx = Simplex::build(model, bounds);
            sx.force_bland = true;
            sx.solve()
        }
        other => other,
    };
    let result = outcome?;
    stats.pivots += sx.pivots;
    stats.refactorizations += sx.refactorizations;
    Ok((result, sx))
}

/// Status of one variable in an extracted [`TableauLp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TabStat {
    Basic,
    AtLower,
    AtUpper,
    Free,
}

/// One simplex tableau row whose basic variable is a fractional integer:
/// the raw material for a Gomory mixed-integer cut. The row states the
/// identity `x_basic + Σ coeffs[j]·x[j] = const` over the affine
/// space `Ax + s = b` (nonbasic structural and slack columns only;
/// artificials are fixed at zero and omitted).
#[derive(Debug, Clone)]
pub(crate) struct FracRow {
    /// Value of the fractional basic integer variable at the vertex.
    pub beta: f64,
    /// Tableau coefficients `(B⁻¹A)[row][j]` of the nonbasic columns,
    /// indexed over structural (`< n`) and slack (`n..n+m`) variables.
    pub coeffs: Vec<(usize, f64)>,
}

/// An LP solve that also exposes the optimal tableau for cut separation.
#[derive(Debug, Clone)]
pub(crate) struct TableauLp {
    pub result: LpResult,
    pub basis: Option<Basis>,
    pub stats: LpStats,
    /// Rows with fractional basic integer variables, most fractional
    /// first; empty unless the result is `Optimal`.
    pub frac_rows: Vec<FracRow>,
    /// Status of every structural and slack variable (`n + m` entries).
    pub stat: Vec<TabStat>,
    /// Current value of every structural and slack variable.
    pub values: Vec<f64>,
}

/// Equilibration divisor of a constraint row — must match `Simplex::build`
/// so cut derivation can reconstruct a slack's definition in structural
/// variables: `s_i = rhs_i/σ_i − Σ (c/σ_i)·x`.
pub(crate) fn row_scale(con: &crate::model::Constraint) -> f64 {
    con.terms.iter().fold(1.0f64, |acc, &(_, c)| acc.max(c.abs()))
}

/// Solve the LP like [`solve_lp_ext`], additionally extracting up to
/// `max_rows` fractional tableau rows for Gomory separation when the
/// result is optimal. `int_mask[j]` marks structural integer variables;
/// fractionality is judged against `int_tol`.
pub(crate) fn solve_lp_tableau(
    model: &Model,
    bounds: &[(f64, f64)],
    warm: Option<&Basis>,
    int_mask: &[bool],
    int_tol: f64,
    max_rows: usize,
) -> Result<TableauLp, LpError> {
    assert_eq!(bounds.len(), model.num_vars());
    let mut stats = LpStats::default();
    if let Some(basis) = warm {
        let mut sx = Simplex::build(model, bounds);
        match sx.solve_warm(basis) {
            Ok(Some(result)) => {
                stats.pivots += sx.pivots;
                stats.refactorizations += sx.refactorizations;
                stats.warm = true;
                return Ok(finish_tableau(result, &sx, stats, int_mask, int_tol, max_rows));
            }
            Ok(None) | Err(_) => {
                stats.pivots += sx.pivots;
                stats.refactorizations += sx.refactorizations;
                stats.fell_back = true;
            }
        }
    }
    let (result, sx) = run_cold_sx(model, bounds, &mut stats)?;
    Ok(finish_tableau(result, &sx, stats, int_mask, int_tol, max_rows))
}

fn finish_tableau(
    result: LpResult,
    sx: &Simplex,
    stats: LpStats,
    int_mask: &[bool],
    int_tol: f64,
    max_rows: usize,
) -> TableauLp {
    let (basis, frac_rows, stat, values) = match &result {
        LpResult::Optimal { .. } => (
            sx.snapshot_basis(),
            sx.extract_frac_rows(int_mask, int_tol, max_rows),
            sx.tab_stats(),
            sx.all_values(),
        ),
        _ => (None, Vec::new(), Vec::new(), Vec::new()),
    };
    TableauLp { result, basis, stats, frac_rows, stat, values }
}

struct Simplex {
    /// structural count
    n: usize,
    /// row count
    m: usize,
    /// sparse columns for structural + slack + artificial vars
    cols: Vec<Vec<(usize, f64)>>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// phase-2 objective (maximization), length grows with artificials
    obj: Vec<f64>,
    rhs: Vec<f64>,
    /// 1.0 when original sense was Maximize, -1.0 for Minimize
    sense_sign: f64,
    /// dense row-major m*m basis inverse
    binv: Vec<f64>,
    basis: Vec<usize>,
    xb: Vec<f64>,
    stat: Vec<VStat>,
    /// variables that may never (re-)enter the basis (artificials in phase 2)
    banned: Vec<bool>,
    degenerate_run: usize,
    pivots: usize,
    refactorizations: usize,
    /// Use Bland's rule from the first pivot (robust restart mode).
    force_bland: bool,
    /// Reusable list of nonzero pivot-row columns for the eta update.
    eta_scratch: Vec<usize>,
}

impl Simplex {
    fn build(model: &Model, bounds: &[(f64, f64)]) -> Simplex {
        let n = model.num_vars();
        let m = model.num_constraints();
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n + m];
        let mut lb = vec![0.0f64; n + m];
        let mut ub = vec![0.0f64; n + m];
        let mut obj = vec![0.0f64; n + m];
        let mut rhs = vec![0.0f64; m];

        let sense_sign = match model.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        for (j, &(l, u)) in bounds.iter().enumerate() {
            debug_assert!(l.is_finite(), "structural lower bounds must be finite");
            lb[j] = l;
            ub[j] = u;
        }
        for &(v, c) in &model.objective().terms {
            obj[v.index()] = sense_sign * c;
        }
        for (i, con) in model.constraints().iter().enumerate() {
            // Row equilibration: divide each row by its largest coefficient
            // so pivot tolerances are meaningful regardless of the model's
            // units (compiler models mix 0/1 placements with memory
            // capacities in the tens of thousands).
            let scale = row_scale(con);
            rhs[i] = con.rhs / scale;
            for &(v, c) in &con.terms {
                cols[v.index()].push((i, c / scale));
            }
            let s = n + i;
            cols[s].push((i, 1.0));
            match con.cmp {
                Cmp::Le => {
                    lb[s] = 0.0;
                    ub[s] = f64::INFINITY;
                }
                Cmp::Ge => {
                    lb[s] = f64::NEG_INFINITY;
                    ub[s] = 0.0;
                }
                Cmp::Eq => {
                    lb[s] = 0.0;
                    ub[s] = 0.0;
                }
            }
        }

        Simplex {
            n,
            m,
            cols,
            lb,
            ub,
            obj,
            rhs,
            sense_sign,
            binv: Vec::new(),
            basis: Vec::new(),
            xb: Vec::new(),
            stat: Vec::new(),
            banned: Vec::new(),
            degenerate_run: 0,
            pivots: 0,
            refactorizations: 0,
            force_bland: false,
            eta_scratch: Vec::new(),
        }
    }

    /// Resting value of a nonbasic variable.
    fn nb_value(&self, j: usize) -> f64 {
        match self.stat[j] {
            VStat::AtLower => self.lb[j],
            VStat::AtUpper => self.ub[j],
            VStat::Free => 0.0,
            VStat::Basic(r) => self.xb[r],
        }
    }

    /// Initial nonbasic status for a variable given its bounds.
    fn rest_status(lb: f64, ub: f64) -> VStat {
        if lb.is_finite() {
            VStat::AtLower
        } else if ub.is_finite() {
            VStat::AtUpper
        } else {
            VStat::Free
        }
    }

    fn solve(&mut self) -> Result<LpResult, LpError> {
        let n = self.n;
        let m = self.m;
        let nv = n + m;
        self.stat = (0..nv)
            .map(|j| Self::rest_status(self.lb[j], self.ub[j]))
            .collect();
        self.banned = vec![false; nv];
        self.binv = identity(m);
        self.basis = (0..m).map(|i| n + i).collect();
        self.xb = vec![0.0; m];

        // Slack basis values: s_i = b_i - A_i * v_N (structural resting values).
        let mut resid = self.rhs.clone();
        for j in 0..n {
            let v = self.nb_value(j);
            if v != 0.0 {
                for &(r, a) in &self.cols[j] {
                    resid[r] -= a * v;
                }
            }
        }
        // Slack starts basic; detect rows whose slack violates its bounds
        // and patch them with artificial variables.
        let mut artificials: Vec<usize> = Vec::new();
        for i in 0..m {
            let s = n + i;
            let v = resid[i];
            if v >= self.lb[s] - FEAS_TOL && v <= self.ub[s] + FEAS_TOL {
                self.stat[s] = VStat::Basic(i);
                self.xb[i] = v;
            } else {
                // clamp slack to nearest bound, make it nonbasic there
                let beta = if v < self.lb[s] { self.lb[s] } else { self.ub[s] };
                self.stat[s] = if beta == self.lb[s] { VStat::AtLower } else { VStat::AtUpper };
                let violation = v - beta;
                let g = if violation >= 0.0 { 1.0 } else { -1.0 };
                let a = self.cols.len();
                self.cols.push(vec![(i, g)]);
                // The basis column for this row is now `g`, not the slack's
                // +1: keep B^-1 consistent (B is diagonal at this point).
                self.binv[i * m + i] = 1.0 / g;
                self.lb.push(0.0);
                self.ub.push(f64::INFINITY);
                self.obj.push(0.0);
                self.stat.push(VStat::Basic(i));
                self.banned.push(false);
                self.basis[i] = a;
                self.xb[i] = violation.abs();
                artificials.push(a);
            }
        }

        if !artificials.is_empty() {
            // Phase 1: maximize -(sum of artificials).
            let mut p1 = vec![0.0; self.cols.len()];
            for &a in &artificials {
                p1[a] = -1.0;
            }
            self.run(&p1)?;
            let infeas: f64 = artificials.iter().map(|&a| self.var_value(a).max(0.0)).sum();
            if infeas > 1e-6 {
                return Ok(LpResult::Infeasible);
            }
            // Drive artificials out of the basis where possible; ban all of
            // them from phase 2 either way (fix bounds to [0,0]).
            for &a in &artificials {
                if let VStat::Basic(r) = self.stat[a] {
                    self.pivot_out_artificial(a, r)?;
                }
            }
            for &a in &artificials {
                self.banned[a] = true;
                self.lb[a] = 0.0;
                self.ub[a] = 0.0;
                if !matches!(self.stat[a], VStat::Basic(_)) {
                    self.stat[a] = VStat::AtLower;
                }
            }
            // Clear any residual infeasibility noise.
            self.refresh_values();
        }

        // Phase 2.
        let obj = self.obj.clone();
        self.degenerate_run = 0;
        match self.run(&obj)? {
            RunOutcome::Optimal => {
                let x: Vec<f64> = (0..n).map(|j| self.var_value(j)).collect();
                let mut obj_val = 0.0;
                for j in 0..n {
                    obj_val += self.obj[j] * x[j];
                }
                Ok(LpResult::Optimal { x, obj: self.sense_sign * obj_val })
            }
            RunOutcome::Unbounded => Ok(LpResult::Unbounded),
        }
    }

    fn var_value(&self, j: usize) -> f64 {
        match self.stat[j] {
            VStat::Basic(r) => self.xb[r],
            VStat::AtLower => self.lb[j],
            VStat::AtUpper => self.ub[j],
            VStat::Free => 0.0,
        }
    }

    /// Degenerate pivot to remove a zero-valued basic artificial. If the
    /// whole row is zero over real columns the row is redundant and the
    /// artificial stays basic (fixed at zero).
    fn pivot_out_artificial(&mut self, art: usize, row: usize) -> Result<(), LpError> {
        let nv = self.n + self.m;
        for j in 0..nv {
            if matches!(self.stat[j], VStat::Basic(_)) || self.banned[j] {
                continue;
            }
            // (B^-1 A_j)[row]
            let mut w_r = 0.0;
            for &(r, a) in &self.cols[j] {
                w_r += self.binv[row * self.m + r] * a;
            }
            if w_r.abs() > 1e-6 {
                let w = self.ftran(j);
                self.do_pivot(j, row, &w, self.var_value(j));
                // old artificial leaves at value ~0 -> rest at lower
                self.stat[art] = VStat::AtLower;
                return Ok(());
            }
        }
        Ok(())
    }

    /// w = B^-1 * A_j
    fn ftran(&self, j: usize) -> Vec<f64> {
        let m = self.m;
        let mut w = vec![0.0; m];
        for &(r, a) in &self.cols[j] {
            let col = r;
            for i in 0..m {
                let v = self.binv[i * m + col];
                if v != 0.0 {
                    w[i] += v * a;
                }
            }
        }
        w
    }

    /// Replace basis entry in `row` with variable `j`, updating `B^-1`.
    fn do_pivot(&mut self, j: usize, row: usize, w: &[f64], enter_value: f64) {
        let m = self.m;
        let piv = w[row];
        debug_assert!(piv.abs() > PIVOT_TOL * 0.01, "pivot too small: {piv}");
        // binv[row] /= piv ; binv[i] -= w[i] * binv[row]
        let inv = 1.0 / piv;
        for k in 0..m {
            self.binv[row * m + k] *= inv;
        }
        // The pivot row of B^-1 is typically ~1-5% dense for compiler
        // models; collect its nonzero columns once so every eta row update
        // touches only those instead of all m entries.
        let mut nz = std::mem::take(&mut self.eta_scratch);
        nz.clear();
        for k in 0..m {
            if self.binv[row * m + k] != 0.0 {
                nz.push(k);
            }
        }
        for i in 0..m {
            if i == row {
                continue;
            }
            let f = w[i];
            if f != 0.0 {
                for &k in &nz {
                    self.binv[i * m + k] -= f * self.binv[row * m + k];
                }
            }
        }
        self.eta_scratch = nz;
        let old = self.basis[row];
        debug_assert!(matches!(self.stat[old], VStat::Basic(r) if r == row));
        self.basis[row] = j;
        self.stat[j] = VStat::Basic(row);
        self.xb[row] = enter_value;
        self.pivots += 1;
    }

    /// Recompute basic values from the current nonbasic resting point.
    fn refresh_values(&mut self) {
        let m = self.m;
        let mut resid = self.rhs.clone();
        for j in 0..self.cols.len() {
            if matches!(self.stat[j], VStat::Basic(_)) {
                continue;
            }
            let v = self.nb_value(j);
            if v != 0.0 {
                for &(r, a) in &self.cols[j] {
                    resid[r] -= a * v;
                }
            }
        }
        for i in 0..m {
            let mut acc = 0.0;
            for k in 0..m {
                let v = self.binv[i * m + k];
                if v != 0.0 {
                    acc += v * resid[k];
                }
            }
            self.xb[i] = acc;
        }
    }

    /// Rebuild `B^-1` from scratch by Gauss-Jordan elimination.
    fn refactorize(&mut self) -> Result<(), LpError> {
        let m = self.m;
        if std::env::var("ILP_DEBUG").is_ok() {
            let mut sorted = self.basis.clone();
            sorted.sort_unstable();
            let before = sorted.len();
            sorted.dedup();
            if sorted.len() != before {
                eprintln!("DUPLICATE BASIS ENTRIES: {:?}", self.basis);
            }
            for (i, &b) in self.basis.iter().enumerate() {
                if !matches!(self.stat[b], VStat::Basic(r) if r == i) {
                    eprintln!("basis[{i}]={b} but stat={:?}", self.stat[b]);
                }
            }
            let empty: Vec<usize> = self.basis.iter().filter(|&&b| self.cols[b].is_empty()).copied().collect();
            if !empty.is_empty() {
                eprintln!("basis vars with EMPTY columns: {empty:?}");
            }
        }
        // Dense B from basis columns.
        let mut bmat = vec![0.0f64; m * m];
        for (col, &j) in self.basis.iter().enumerate() {
            for &(r, a) in &self.cols[j] {
                bmat[r * m + col] = a;
            }
        }
        let mut inv = identity(m);
        // Gauss-Jordan with partial pivoting.
        for c in 0..m {
            let mut best = c;
            let mut best_abs = bmat[c * m + c].abs();
            for r in (c + 1)..m {
                let a = bmat[r * m + c].abs();
                if a > best_abs {
                    best = r;
                    best_abs = a;
                }
            }
            // Relative threshold: coefficients in compiler models span
            // ~1e4 (memory capacities), so judge singularity against the
            // remaining submatrix scale.
            let scale = bmat
                .iter()
                .fold(1.0f64, |acc, &v| acc.max(v.abs()));
            if best_abs < 1e-13 * scale {
                return Err(LpError::Numerical("singular basis during refactorization".into()));
            }
            if best != c {
                for k in 0..m {
                    bmat.swap(c * m + k, best * m + k);
                    inv.swap(c * m + k, best * m + k);
                }
            }
            let piv = bmat[c * m + c];
            let pinv = 1.0 / piv;
            for k in 0..m {
                bmat[c * m + k] *= pinv;
                inv[c * m + k] *= pinv;
            }
            for r in 0..m {
                if r == c {
                    continue;
                }
                let f = bmat[r * m + c];
                if f != 0.0 {
                    for k in 0..m {
                        bmat[r * m + k] -= f * bmat[c * m + k];
                        inv[r * m + k] -= f * inv[c * m + k];
                    }
                }
            }
        }
        self.binv = inv;
        self.refactorizations += 1;
        self.refresh_values();
        Ok(())
    }

    /// Run the simplex loop for a given (maximization) objective vector.
    fn run(&mut self, c: &[f64]) -> Result<RunOutcome, LpError> {
        let m = self.m;
        let max_iters = 20_000 + 200 * (self.n + m);
        let mut since_refresh = 0usize;
        for _iter in 0..max_iters {
            // y = c_B^T B^-1
            let mut y = vec![0.0; m];
            for i in 0..m {
                let cb = c[self.basis[i]];
                if cb != 0.0 {
                    for k in 0..m {
                        let v = self.binv[i * m + k];
                        if v != 0.0 {
                            y[k] += cb * v;
                        }
                    }
                }
            }
            // Pricing.
            let bland = self.force_bland || self.degenerate_run >= DEGENERATE_SWITCH;
            let mut enter: Option<(usize, f64, f64)> = None; // (j, |d|, dir)
            for j in 0..self.cols.len() {
                if self.banned[j] || matches!(self.stat[j], VStat::Basic(_)) {
                    continue;
                }
                let mut d = c[j];
                for &(r, a) in &self.cols[j] {
                    d -= y[r] * a;
                }
                let dir = match self.stat[j] {
                    VStat::AtLower if d > COST_TOL => 1.0,
                    VStat::AtUpper if d < -COST_TOL => -1.0,
                    VStat::Free if d > COST_TOL => 1.0,
                    VStat::Free if d < -COST_TOL => -1.0,
                    _ => continue,
                };
                if bland {
                    enter = Some((j, d.abs(), dir));
                    break;
                }
                match enter {
                    Some((_, best, _)) if d.abs() <= best => {}
                    _ => enter = Some((j, d.abs(), dir)),
                }
            }
            let Some((j, _, dir)) = enter else {
                return Ok(RunOutcome::Optimal);
            };

            let w = self.ftran(j);
            // Ratio test: entering moves t >= 0 in direction `dir`; basic i
            // changes by -dir * t * w[i]. The pivot threshold is relative
            // to the column's magnitude so cancellation noise in long
            // elimination chains is not mistaken for a pivot.
            let w_scale = w.iter().fold(1.0f64, |acc, &v| acc.max(v.abs()));
            let pivot_tol = PIVOT_TOL * w_scale;
            let own_span = if self.lb[j].is_finite() && self.ub[j].is_finite() {
                self.ub[j] - self.lb[j]
            } else {
                f64::INFINITY
            };
            let mut t_limit = own_span;
            let mut leave: Option<(usize, bool)> = None; // (row, hits_upper)
            for i in 0..m {
                let delta = -dir * w[i];
                if delta > pivot_tol {
                    let b = self.basis[i];
                    if self.ub[b].is_finite() {
                        let lim = ((self.ub[b] - self.xb[i]) / delta).max(0.0);
                        if lim < t_limit - 1e-12 {
                            t_limit = lim;
                            leave = Some((i, true));
                        }
                    }
                } else if delta < -pivot_tol {
                    let b = self.basis[i];
                    if self.lb[b].is_finite() {
                        let lim = ((self.lb[b] - self.xb[i]) / delta).max(0.0);
                        if lim < t_limit - 1e-12 {
                            t_limit = lim;
                            leave = Some((i, false));
                        }
                    }
                }
            }

            if t_limit.is_infinite() {
                return Ok(RunOutcome::Unbounded);
            }
            if t_limit < 1e-10 {
                self.degenerate_run += 1;
            } else {
                self.degenerate_run = 0;
            }

            let start = self.nb_value(j);
            match leave {
                None => {
                    // Bound flip: entering runs to its opposite bound.
                    for i in 0..m {
                        self.xb[i] -= dir * t_limit * w[i];
                    }
                    self.stat[j] = match self.stat[j] {
                        VStat::AtLower => VStat::AtUpper,
                        VStat::AtUpper => VStat::AtLower,
                        s => s, // Free with finite span cannot happen
                    };
                }
                Some((row, hits_upper)) => {
                    for i in 0..m {
                        self.xb[i] -= dir * t_limit * w[i];
                    }
                    let leaving = self.basis[row];
                    let enter_value = start + dir * t_limit;
                    self.do_pivot(j, row, &w, enter_value);
                    self.stat[leaving] = if hits_upper { VStat::AtUpper } else { VStat::AtLower };
                    since_refresh += 1;
                    if since_refresh >= REFRESH_PERIOD {
                        since_refresh = 0;
                        if self.basis_residual() > 1e-6 {
                            self.refactorize()?;
                        } else {
                            self.refresh_values();
                        }
                    }
                }
            }
        }
        Err(LpError::IterationLimit)
    }

    /// Snapshot the current basis (statuses plus, for small-enough
    /// models, the row assignment and `B^-1`) for reuse by a warm start.
    /// Returns `None` when the basis is not representable — a redundant
    /// row left an artificial variable basic.
    fn snapshot_basis(&self) -> Option<Basis> {
        let nv = self.n + self.m;
        if self.basis.iter().any(|&b| b >= nv) {
            return None;
        }
        let stat = (0..nv)
            .map(|j| match self.stat[j] {
                VStat::Basic(_) => BStat::Basic,
                VStat::AtLower => BStat::AtLower,
                VStat::AtUpper => BStat::AtUpper,
                VStat::Free => BStat::Free,
            })
            .collect();
        let (rows, binv) = if self.m <= BINV_SNAPSHOT_MAX_ROWS {
            (self.basis.clone(), self.binv.clone())
        } else {
            (Vec::new(), Vec::new())
        };
        Some(Basis { stat, rows, binv })
    }

    /// Statuses of the structural and slack variables for [`TableauLp`].
    fn tab_stats(&self) -> Vec<TabStat> {
        (0..self.n + self.m)
            .map(|j| match self.stat[j] {
                VStat::Basic(_) => TabStat::Basic,
                VStat::AtLower => TabStat::AtLower,
                VStat::AtUpper => TabStat::AtUpper,
                VStat::Free => TabStat::Free,
            })
            .collect()
    }

    /// Current values of the structural and slack variables.
    fn all_values(&self) -> Vec<f64> {
        (0..self.n + self.m).map(|j| self.var_value(j)).collect()
    }

    /// Extract tableau rows whose basic variable is a fractional integer
    /// structural variable, most fractional first (ties by row index).
    /// Nonbasic artificials are fixed at zero and never enter the rows.
    fn extract_frac_rows(&self, int_mask: &[bool], int_tol: f64, max_rows: usize) -> Vec<FracRow> {
        let (n, m) = (self.n, self.m);
        let nv = n + m;
        let mut cands: Vec<(f64, usize)> = (0..m)
            .filter_map(|i| {
                let b = self.basis[i];
                if b >= n || !int_mask[b] {
                    return None;
                }
                let v = self.xb[i];
                let f = v - v.floor();
                if f > int_tol && f < 1.0 - int_tol {
                    // score: distance from integrality, in [0, 0.5]
                    Some((0.5 - (f - 0.5).abs(), i))
                } else {
                    None
                }
            })
            .collect();
        cands.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        cands.truncate(max_rows);
        cands
            .into_iter()
            .map(|(_, i)| {
                let mut coeffs = Vec::new();
                for j in 0..nv {
                    if matches!(self.stat[j], VStat::Basic(_)) || self.banned[j] {
                        continue;
                    }
                    let mut a = 0.0;
                    for &(r, c) in &self.cols[j] {
                        let p = self.binv[i * m + r];
                        if p != 0.0 {
                            a += p * c;
                        }
                    }
                    if a.abs() > 1e-12 {
                        coeffs.push((j, a));
                    }
                }
                FracRow { beta: self.xb[i], coeffs }
            })
            .collect()
    }

    /// Re-optimize from a caller-supplied basis with the bounded-variable
    /// dual simplex.
    ///
    /// Returns `Ok(None)` when the basis is unusable and the caller should
    /// fall back to the cold solve: wrong shape, wrong basic count,
    /// singular after refactorization, dual-infeasible (the basis was not
    /// optimal for this objective), a dual degeneracy stall, or the
    /// iteration cap. `Ok(Some(Infeasible))` is only returned after the
    /// initial dual-feasibility check passed, which makes the
    /// no-entering-candidate certificate sound.
    fn solve_warm(&mut self, warm: &Basis) -> Result<Option<LpResult>, LpError> {
        let n = self.n;
        let m = self.m;
        let nv = n + m;
        if warm.stat.len() != nv {
            return Ok(None);
        }
        // Install statuses. When the snapshot carries its row assignment
        // and inverse (same model, bound-independent matrix), reuse them —
        // the install is then one O(m²) copy plus a residual check.
        // Otherwise basic variables take rows in ascending index order and
        // one refactorization rebuilds B^-1.
        self.stat = vec![VStat::Free; nv];
        self.banned = vec![false; nv];
        self.basis = Vec::with_capacity(m);
        let reuse_inv = warm.rows.len() == m
            && warm.binv.len() == m * m
            && warm.rows.iter().all(|&j| j < nv && warm.stat[j] == BStat::Basic);
        if reuse_inv {
            for (i, &j) in warm.rows.iter().enumerate() {
                if matches!(self.stat[j], VStat::Basic(_)) {
                    return Ok(None); // duplicate row entry: corrupt snapshot
                }
                self.stat[j] = VStat::Basic(i);
            }
            self.basis = warm.rows.clone();
        }
        for j in 0..nv {
            if matches!(self.stat[j], VStat::Basic(_)) {
                continue;
            }
            self.stat[j] = match warm.stat[j] {
                BStat::Basic => {
                    if reuse_inv || self.basis.len() == m {
                        // With a row assignment every Basic entry is
                        // already placed; a leftover means a mismatch.
                        return Ok(None);
                    }
                    self.basis.push(j);
                    VStat::Basic(self.basis.len() - 1)
                }
                // A recorded resting side can be incompatible with the
                // node's bounds only in pathological callers; snap to a
                // valid resting status rather than reject.
                BStat::AtLower if self.lb[j].is_finite() => VStat::AtLower,
                BStat::AtUpper if self.ub[j].is_finite() => VStat::AtUpper,
                _ => Self::rest_status(self.lb[j], self.ub[j]),
            };
        }
        if self.basis.len() != m {
            return Ok(None);
        }
        self.xb = vec![0.0; m];
        if reuse_inv {
            self.binv = warm.binv.clone();
            self.refresh_values();
            if self.basis_residual() > 1e-6 {
                // The inverse does not match this model's matrix (foreign
                // or numerically stale snapshot): rebuild from scratch.
                self.binv = identity(m);
                if self.refactorize().is_err() {
                    return Ok(None);
                }
            }
        } else {
            self.binv = identity(m);
            if self.refactorize().is_err() {
                return Ok(None);
            }
        }

        // Verify dual feasibility under the phase-2 objective. The parent
        // optimum satisfies this by construction; a stale or foreign basis
        // may not, and the Infeasible certificate below is only sound when
        // it does.
        let obj = self.obj.clone();
        let mut y = vec![0.0; m];
        for i in 0..m {
            let cb = obj[self.basis[i]];
            if cb != 0.0 {
                for k in 0..m {
                    let v = self.binv[i * m + k];
                    if v != 0.0 {
                        y[k] += cb * v;
                    }
                }
            }
        }
        for j in 0..nv {
            if matches!(self.stat[j], VStat::Basic(_)) {
                continue;
            }
            let mut d = obj[j];
            for &(r, a) in &self.cols[j] {
                d -= y[r] * a;
            }
            let bad = match self.stat[j] {
                VStat::AtLower => d > DUAL_FEAS_TOL,
                VStat::AtUpper => d < -DUAL_FEAS_TOL,
                VStat::Free => d.abs() > DUAL_FEAS_TOL,
                VStat::Basic(_) => false,
            };
            if bad {
                return Ok(None);
            }
        }

        let max_iters = 20_000 + 200 * nv;
        let mut since_refresh = 0usize;
        let mut degenerate = 0usize;
        for _iter in 0..max_iters {
            // Leaving: the basic variable with the largest bound violation.
            // `viol` is signed — positive above the upper bound, negative
            // below the lower bound. Ties keep the first (lowest) row.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..m {
                let b = self.basis[i];
                let v = self.xb[i];
                let viol = if v > self.ub[b] + FEAS_TOL {
                    v - self.ub[b]
                } else if v < self.lb[b] - FEAS_TOL {
                    v - self.lb[b]
                } else {
                    continue;
                };
                match leave {
                    Some((_, best)) if viol.abs() <= best.abs() => {}
                    _ => leave = Some((i, viol)),
                }
            }
            let Some((row, viol)) = leave else {
                // Primal feasible again: the primal loop certifies
                // optimality (usually zero pivots — we kept dual
                // feasibility throughout) and cleans up tolerance drift.
                return match self.run(&obj)? {
                    RunOutcome::Optimal => {
                        let x: Vec<f64> = (0..n).map(|j| self.var_value(j)).collect();
                        let mut obj_val = 0.0;
                        for j in 0..n {
                            obj_val += self.obj[j] * x[j];
                        }
                        Ok(Some(LpResult::Optimal { x, obj: self.sense_sign * obj_val }))
                    }
                    RunOutcome::Unbounded => Ok(Some(LpResult::Unbounded)),
                };
            };

            // Fresh dual prices for this basis (skipping zero B^-1
            // entries), then price only direction-feasible candidates.
            let mut y = vec![0.0; m];
            for i in 0..m {
                let cb = obj[self.basis[i]];
                if cb != 0.0 {
                    for k in 0..m {
                        let v = self.binv[i * m + k];
                        if v != 0.0 {
                            y[k] += cb * v;
                        }
                    }
                }
            }
            // Entering: dual ratio test. alpha_j = (B^-1 A_j)[row]; the
            // candidate must move the leaving variable toward its violated
            // bound without leaving its own resting side, and the minimal
            // |d_j / alpha_j| keeps every other reduced cost dual-feasible.
            let mut enter: Option<(usize, f64)> = None; // (j, |theta|)
            for j in 0..nv {
                if matches!(self.stat[j], VStat::Basic(_)) || self.banned[j] {
                    continue;
                }
                let mut alpha = 0.0;
                for &(r, a) in &self.cols[j] {
                    let p = self.binv[row * m + r];
                    if p != 0.0 {
                        alpha += p * a;
                    }
                }
                if alpha.abs() <= PIVOT_TOL {
                    continue;
                }
                let ok = match self.stat[j] {
                    VStat::AtLower => viol > 0.0 && alpha > 0.0 || viol < 0.0 && alpha < 0.0,
                    VStat::AtUpper => viol > 0.0 && alpha < 0.0 || viol < 0.0 && alpha > 0.0,
                    VStat::Free => true,
                    VStat::Basic(_) => false,
                };
                if !ok {
                    continue;
                }
                let mut d = obj[j];
                for &(r, a) in &self.cols[j] {
                    d -= y[r] * a;
                }
                let theta = (d / alpha).abs();
                match enter {
                    Some((_, best)) if theta >= best => {}
                    _ => enter = Some((j, theta)),
                }
            }
            let Some((q, theta)) = enter else {
                // No column can repair the violated row while keeping dual
                // feasibility: the node is primal infeasible.
                return Ok(Some(LpResult::Infeasible));
            };
            if theta < 1e-10 {
                degenerate += 1;
                if degenerate > DUAL_DEGENERATE_LIMIT {
                    return Ok(None);
                }
            } else {
                degenerate = 0;
            }

            let w = self.ftran(q);
            let alpha_q = w[row];
            if alpha_q.abs() <= PIVOT_TOL {
                return Ok(None);
            }
            // The leaving variable moves exactly to its violated bound:
            // d(xb[row]) = -alpha_q * dx = -viol.
            let dx = viol / alpha_q;
            let enter_value = self.nb_value(q) + dx;
            for i in 0..m {
                if i != row {
                    self.xb[i] -= dx * w[i];
                }
            }
            let leaving = self.basis[row];
            self.do_pivot(q, row, &w, enter_value);
            self.stat[leaving] = if viol > 0.0 { VStat::AtUpper } else { VStat::AtLower };
            since_refresh += 1;
            if since_refresh >= REFRESH_PERIOD {
                since_refresh = 0;
                if self.basis_residual() > 1e-6 {
                    if self.refactorize().is_err() {
                        return Ok(None);
                    }
                } else {
                    self.refresh_values();
                }
            }
        }
        // Iteration cap: the cold path is still available.
        Ok(None)
    }

    /// Residual ||B x_B + A_N v_N - b||_inf as a numerical health check.
    fn basis_residual(&self) -> f64 {
        let mut resid = self.rhs.clone();
        for j in 0..self.cols.len() {
            let v = self.var_value(j);
            if v != 0.0 {
                for &(r, a) in &self.cols[j] {
                    resid[r] -= a * v;
                }
            }
        }
        resid.iter().fold(0.0f64, |acc, r| acc.max(r.abs()))
    }
}

enum RunOutcome {
    Optimal,
    Unbounded,
}

fn identity(m: usize) -> Vec<f64> {
    let mut id = vec![0.0; m * m];
    for i in 0..m {
        id[i * m + i] = 1.0;
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    fn bounds_of(model: &Model) -> Vec<(f64, f64)> {
        model.vars().iter().map(|v| (v.lb, v.ub)).collect()
    }

    fn optimal(model: &Model) -> (Vec<f64>, f64) {
        match solve_lp(model, &bounds_of(model)).expect("lp solve") {
            LpResult::Optimal { x, obj } => (x, obj),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn basic_maximization() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0  -> x=4, y=0, obj 12
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        m.le("c1", LinExpr::from(x) + LinExpr::from(y), 4.0);
        m.le("c2", LinExpr::from(x) + LinExpr::term(y, 3.0), 6.0);
        m.set_objective(LinExpr::term(x, 3.0) + LinExpr::term(y, 2.0), Sense::Maximize);
        let (x_vals, obj) = optimal(&m);
        assert!((obj - 12.0).abs() < 1e-6, "obj = {obj}");
        assert!((x_vals[0] - 4.0).abs() < 1e-6);
        assert!(x_vals[1].abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2  -> x=10 (cheapest), y=0? cost 20
        // vs x=2,y=8 cost 28 -> optimum x=10,y=0 obj 20
        let mut m = Model::new();
        let x = m.continuous("x", 2.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        m.ge("demand", LinExpr::from(x) + LinExpr::from(y), 10.0);
        m.set_objective(LinExpr::term(x, 2.0) + LinExpr::term(y, 3.0), Sense::Minimize);
        let (x_vals, obj) = optimal(&m);
        assert!((obj - 20.0).abs() < 1e-6, "obj = {obj}");
        assert!((x_vals[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + 2y == 8, x <= 4  -> x=4, y=2, obj 6
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 4.0);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        m.eq("balance", LinExpr::from(x) + LinExpr::term(y, 2.0), 8.0);
        m.set_objective(LinExpr::from(x) + LinExpr::from(y), Sense::Maximize);
        let (x_vals, obj) = optimal(&m);
        assert!((obj - 6.0).abs() < 1e-6, "obj = {obj}");
        assert!((x_vals[0] - 4.0).abs() < 1e-6);
        assert!((x_vals[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 1.0);
        m.ge("too_big", LinExpr::from(x), 5.0);
        m.set_objective(LinExpr::from(x), Sense::Maximize);
        let r = solve_lp(&m, &bounds_of(&m)).unwrap();
        assert!(matches!(r, LpResult::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        m.ge("floor", LinExpr::from(x) - LinExpr::from(y), 0.0);
        m.set_objective(LinExpr::from(x), Sense::Maximize);
        let r = solve_lp(&m, &bounds_of(&m)).unwrap();
        assert!(matches!(r, LpResult::Unbounded));
    }

    #[test]
    fn respects_upper_bounds_via_flip() {
        // max x + y with x,y in [0, 3] and x + y <= 5 -> 5
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 3.0);
        let y = m.continuous("y", 0.0, 3.0);
        m.le("cap", LinExpr::from(x) + LinExpr::from(y), 5.0);
        m.set_objective(LinExpr::from(x) + LinExpr::from(y), Sense::Maximize);
        let (_, obj) = optimal(&m);
        assert!((obj - 5.0).abs() < 1e-6);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -5  -> -5
        let mut m = Model::new();
        let x = m.continuous("x", -5.0, 10.0);
        m.set_objective(LinExpr::from(x), Sense::Minimize);
        let (x_vals, obj) = optimal(&m);
        assert!((obj + 5.0).abs() < 1e-6);
        assert!((x_vals[0] + 5.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate corner: several constraints meet at the optimum.
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        m.le("a", LinExpr::from(x) + LinExpr::from(y), 1.0);
        m.le("b", LinExpr::from(x), 1.0);
        m.le("c", LinExpr::from(y), 1.0);
        m.le("d", LinExpr::term(x, 2.0) + LinExpr::from(y), 2.0);
        m.set_objective(LinExpr::from(x) + LinExpr::from(y), Sense::Maximize);
        let (_, obj) = optimal(&m);
        assert!((obj - 1.0).abs() < 1e-6);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale's example, known to cycle under naive Dantzig without
        // safeguards. min -0.75x4 + 150x5 - 0.02x6 + 6x7 (standard form).
        let mut m = Model::new();
        let x4 = m.continuous("x4", 0.0, f64::INFINITY);
        let x5 = m.continuous("x5", 0.0, f64::INFINITY);
        let x6 = m.continuous("x6", 0.0, f64::INFINITY);
        let x7 = m.continuous("x7", 0.0, f64::INFINITY);
        m.le(
            "r1",
            LinExpr::term(x4, 0.25) - LinExpr::term(x5, 60.0) - LinExpr::term(x6, 1.0 / 25.0)
                + LinExpr::term(x7, 9.0),
            0.0,
        );
        m.le(
            "r2",
            LinExpr::term(x4, 0.5) - LinExpr::term(x5, 90.0) - LinExpr::term(x6, 1.0 / 50.0)
                + LinExpr::term(x7, 3.0),
            0.0,
        );
        m.le("r3", LinExpr::from(x6), 1.0);
        m.set_objective(
            LinExpr::term(x4, -0.75) + LinExpr::term(x5, 150.0) - LinExpr::term(x6, 0.02)
                + LinExpr::term(x7, 6.0),
            Sense::Minimize,
        );
        let (_, obj) = optimal(&m);
        assert!((obj + 0.05).abs() < 1e-6, "obj = {obj}");
    }

    #[test]
    fn fixed_variables_by_bounds() {
        // Branch-and-bound style override: fix x to 1 by bounds.
        let mut m = Model::new();
        let x = m.binary("x");
        let y = m.binary("y");
        m.le("cap", LinExpr::from(x) + LinExpr::from(y), 1.0);
        m.set_objective(LinExpr::from(x) + LinExpr::term(y, 2.0), Sense::Maximize);
        let r = solve_lp(&m, &[(1.0, 1.0), (0.0, 1.0)]).unwrap();
        match r {
            LpResult::Optimal { x: vals, obj } => {
                assert!((vals[0] - 1.0).abs() < 1e-6);
                assert!(vals[1].abs() < 1e-6);
                assert!((obj - 1.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn redundant_equality_rows() {
        // Two identical equalities: phase 1 must handle the redundant row.
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 10.0);
        let y = m.continuous("y", 0.0, 10.0);
        m.eq("e1", LinExpr::from(x) + LinExpr::from(y), 5.0);
        m.eq("e2", LinExpr::from(x) + LinExpr::from(y), 5.0);
        m.set_objective(LinExpr::from(x), Sense::Maximize);
        let (x_vals, obj) = optimal(&m);
        assert!((obj - 5.0).abs() < 1e-6);
        assert!((x_vals[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn larger_random_like_lp() {
        // Transportation-flavoured LP with a known optimum.
        // min sum c_ij x_ij ; supplies 20/30, demands 10/25/15.
        let mut m = Model::new();
        let c = [[8.0, 6.0, 10.0], [9.0, 12.0, 13.0]];
        let mut xs = Vec::new();
        for i in 0..2 {
            for j in 0..3 {
                xs.push(m.continuous(format!("x{i}{j}"), 0.0, f64::INFINITY));
            }
        }
        m.le("s0", LinExpr::from(xs[0]) + LinExpr::from(xs[1]) + LinExpr::from(xs[2]), 20.0);
        m.le("s1", LinExpr::from(xs[3]) + LinExpr::from(xs[4]) + LinExpr::from(xs[5]), 30.0);
        m.ge("d0", LinExpr::from(xs[0]) + LinExpr::from(xs[3]), 10.0);
        m.ge("d1", LinExpr::from(xs[1]) + LinExpr::from(xs[4]), 25.0);
        m.ge("d2", LinExpr::from(xs[2]) + LinExpr::from(xs[5]), 15.0);
        let mut obj = LinExpr::zero();
        for i in 0..2 {
            for j in 0..3 {
                obj += LinExpr::term(xs[i * 3 + j], c[i][j]);
            }
        }
        m.set_objective(obj, Sense::Minimize);
        let (x_vals, obj) = optimal(&m);
        // LP optimum: x01=20 (6*20=120), x10=10 (90), x11=5 (60), x12=15 (195) = 465
        assert!((obj - 465.0).abs() < 1e-5, "obj = {obj}");
        let total: f64 = x_vals.iter().sum();
        assert!((total - 50.0).abs() < 1e-5);
    }
}

#[cfg(test)]
mod warm_tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    fn knapsack() -> (Model, Vec<(f64, f64)>) {
        let mut m = Model::new();
        let weights = [4.0, 3.0, 5.0, 6.0, 2.0];
        let values = [7.0, 4.0, 9.0, 10.0, 3.0];
        let xs: Vec<_> = (0..5).map(|i| m.binary(format!("x{i}"))).collect();
        let mut cap = LinExpr::zero();
        let mut obj = LinExpr::zero();
        for i in 0..5 {
            cap += LinExpr::term(xs[i], weights[i]);
            obj += LinExpr::term(xs[i], values[i]);
        }
        m.le("cap", cap, 10.0);
        m.set_objective(obj, Sense::Maximize);
        let bounds = m.vars().iter().map(|v| (v.lb, v.ub)).collect();
        (m, bounds)
    }

    #[test]
    fn warm_resolve_matches_cold_after_branching() {
        let (m, root_bounds) = knapsack();
        let root = solve_lp_ext(&m, &root_bounds, None).unwrap();
        assert!(matches!(root.result, LpResult::Optimal { .. }));
        let basis = root.basis.expect("root basis");
        assert!(!root.stats.warm && !root.stats.fell_back);

        // Branch every variable both ways; warm must agree with cold.
        for j in 0..5 {
            for v in [0.0, 1.0] {
                let mut b = root_bounds.clone();
                b[j] = (v, v);
                let warm = solve_lp_ext(&m, &b, Some(&basis)).unwrap();
                let cold = solve_lp(&m, &b).unwrap();
                match (&warm.result, &cold) {
                    (
                        LpResult::Optimal { obj: ow, .. },
                        LpResult::Optimal { obj: oc, .. },
                    ) => assert!((ow - oc).abs() < 1e-6, "x{j}={v}: warm {ow} vs cold {oc}"),
                    (LpResult::Infeasible, LpResult::Infeasible) => {}
                    other => panic!("x{j}={v}: mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn warm_detects_infeasible_child() {
        let (m, root_bounds) = knapsack();
        let basis = solve_lp_ext(&m, &root_bounds, None).unwrap().basis.unwrap();
        // Fixing x0, x2, x4 to 1 and x3 to 0 needs weight 11 > 10.
        let b = vec![(1.0, 1.0), (0.0, 1.0), (1.0, 1.0), (0.0, 0.0), (1.0, 1.0)];
        let warm = solve_lp_ext(&m, &b, Some(&basis)).unwrap();
        assert!(matches!(warm.result, LpResult::Infeasible), "{:?}", warm.result);
    }

    #[test]
    fn dual_infeasible_basis_falls_back_to_cold() {
        // max x s.t. x <= 4. The basis claiming x nonbasic-at-lower with
        // the slack basic is primal feasible but NOT dual feasible (x has
        // positive reduced cost), so the warm path must fall back and
        // still find the optimum.
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        m.le("cap", LinExpr::from(x), 4.0);
        m.set_objective(LinExpr::from(x), Sense::Maximize);
        let bad = Basis {
            stat: vec![BStat::AtLower, BStat::Basic],
            rows: Vec::new(),
            binv: Vec::new(),
        };
        let out = solve_lp_ext(&m, &[(0.0, f64::INFINITY)], Some(&bad)).unwrap();
        assert!(out.stats.fell_back, "warm path should have fallen back");
        assert!(!out.stats.warm);
        match out.result {
            LpResult::Optimal { obj, .. } => assert!((obj - 4.0).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_shape_basis_falls_back_without_error() {
        let (m, bounds) = knapsack();
        let bad = Basis { stat: vec![BStat::Basic; 2], rows: Vec::new(), binv: Vec::new() };
        let out = solve_lp_ext(&m, &bounds, Some(&bad)).unwrap();
        assert!(out.stats.fell_back);
        assert!(matches!(out.result, LpResult::Optimal { .. }));
    }

    #[test]
    fn warm_solve_counts_work() {
        let (m, root_bounds) = knapsack();
        let root = solve_lp_ext(&m, &root_bounds, None).unwrap();
        assert!(root.stats.pivots > 0, "cold solve should pivot");
        let basis = root.basis.unwrap();
        let mut b = root_bounds.clone();
        b[0] = (0.0, 0.0);
        let warm = solve_lp_ext(&m, &b, Some(&basis)).unwrap();
        assert!(warm.stats.warm);
        // The snapshot carried the parent's inverse, so the install is a
        // copy + residual check — no from-scratch refactorization.
        assert_eq!(warm.stats.refactorizations, 0);
        assert!(warm.stats.pivots <= root.stats.pivots);
    }

    #[test]
    fn statuses_only_basis_still_warm_starts() {
        // A snapshot without the captured inverse (e.g. a model above the
        // capture cap) must still warm-start via one refactorization.
        let (m, root_bounds) = knapsack();
        let root = solve_lp_ext(&m, &root_bounds, None).unwrap();
        let mut basis = root.basis.unwrap();
        basis.rows.clear();
        basis.binv.clear();
        let mut b = root_bounds.clone();
        b[0] = (0.0, 0.0);
        let warm = solve_lp_ext(&m, &b, Some(&basis)).unwrap();
        assert!(warm.stats.warm, "statuses alone must suffice");
        assert!(warm.stats.refactorizations >= 1);
        let cold = solve_lp(&m, &b).unwrap();
        match (&warm.result, &cold) {
            (LpResult::Optimal { obj: ow, .. }, LpResult::Optimal { obj: oc, .. }) => {
                assert!((ow - oc).abs() < 1e-6)
            }
            other => panic!("{other:?}"),
        }
    }
}

#[cfg(test)]
mod regressions {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    /// Regression: a fixed-variable node whose residual demands a negative
    /// value used to slip past phase 1 because the basis inverse was not
    /// adjusted for artificials with a -1 column.
    #[test]
    fn infeasible_node_detected() {
        let mut m = Model::new();
        let weights = [4.0, 3.0, 5.0, 6.0, 2.0];
        let values = [7.0, 4.0, 9.0, 10.0, 3.0];
        let xs: Vec<_> = (0..5).map(|i| m.binary(format!("x{i}"))).collect();
        let mut cap = LinExpr::zero();
        let mut obj = LinExpr::zero();
        for i in 0..5 {
            cap += LinExpr::term(xs[i], weights[i]);
            obj += LinExpr::term(xs[i], values[i]);
        }
        m.le("cap", cap, 10.0);
        m.set_objective(obj, Sense::Maximize);
        let b = vec![(1.0,1.0),(0.0,1.0),(1.0,1.0),(0.0,0.0),(1.0,1.0)];
        let r = solve_lp(&m, &b).unwrap();
        assert!(matches!(r, LpResult::Infeasible), "{r:?}");
    }
}

#[cfg(test)]
mod scaling_tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    /// Compiler-style conditioning: placement binaries against capacity
    /// coefficients in the tens of thousands. Row equilibration plus the
    /// relative pivot threshold must keep the solve exact.
    #[test]
    fn mixed_scale_coefficients_solve_exactly() {
        let mut m = Model::new();
        let cap = 54_687.0f64;
        let x: Vec<_> = (0..6).map(|i| m.binary(format!("x{i}"))).collect();
        let c: Vec<_> = (0..6)
            .map(|i| m.continuous(format!("c{i}"), 0.0, cap))
            .collect();
        let mut total = LinExpr::zero();
        for i in 0..6 {
            // c_i <= cap * x_i (the colocate pattern)
            m.le(
                format!("link{i}"),
                LinExpr::from(c[i]) - LinExpr::term(x[i], cap),
                0.0,
            );
            total += LinExpr::from(c[i]);
        }
        // at most three placements
        m.le(
            "placements",
            LinExpr::sum(x.iter().map(|&v| LinExpr::from(v))),
            3.0,
        );
        m.set_objective(total, Sense::Maximize);
        let bounds: Vec<(f64, f64)> = m.vars().iter().map(|v| (v.lb, v.ub)).collect();
        match solve_lp(&m, &bounds).unwrap() {
            LpResult::Optimal { obj, .. } => {
                // Even fractionally, sum(c) <= cap * sum(x) <= 3 cap.
                assert!((obj - 3.0 * cap).abs() < 1e-4, "LP relaxation obj = {obj}");
            }
            other => panic!("{other:?}"),
        }
        // Integer version: exactly 3 * cap.
        let out = crate::branch::solve(&m).unwrap();
        assert!((out.solution.unwrap().objective - 3.0 * cap).abs() < 1e-4);
    }

    /// The Bland restart path: force it by running a wide degenerate model.
    #[test]
    fn forced_bland_mode_still_optimal() {
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 10.0);
        let y = m.continuous("y", 0.0, 10.0);
        m.le("a", LinExpr::from(x) + LinExpr::from(y), 10.0);
        m.le("b", LinExpr::term(x, 2.0) + LinExpr::from(y), 15.0);
        m.set_objective(LinExpr::term(x, 3.0) + LinExpr::term(y, 2.0), Sense::Maximize);
        let bounds: Vec<(f64, f64)> = m.vars().iter().map(|v| (v.lb, v.ub)).collect();
        let mut sx = Simplex::build(&m, &bounds);
        sx.force_bland = true;
        match sx.solve().unwrap() {
            LpResult::Optimal { obj, .. } => assert!((obj - 25.0).abs() < 1e-6, "obj {obj}"),
            other => panic!("{other:?}"),
        }
    }
}

//! Cutting planes for the MIP engine: Gomory mixed-integer cuts derived
//! from the warm simplex tableau and knapsack cover cuts separated from
//! the capacity rows that dominate joint placement models, managed by a
//! cut pool with violation-based selection and age-out.
//!
//! All cuts are globally valid for the mixed-integer hull: Gomory rows are
//! always shifted against the *root* bounds (never a node's tightened
//! bounds), so a cut separated anywhere in the tree can be applied
//! everywhere. Cuts are appended to a working copy of the model as
//! ordinary `Le` rows; the LP relaxation tightens while incumbent
//! feasibility keeps being checked against the original model.

use crate::model::{Cmp, LinExpr, Model, VarId};
use crate::simplex::{row_scale, FracRow, TabStat, TableauLp};

/// Separation rounds at the root before branching starts.
pub(crate) const MAX_CUT_ROUNDS: usize = 10;
/// Fractional tableau rows examined per Gomory separation call.
pub(crate) const GOMORY_ROWS_PER_ROUND: usize = 8;
/// Cuts activated (appended to the LP) per separation event — the
/// "per-node activation budget" that keeps the LP small.
pub(crate) const ACTIVATION_BUDGET: usize = 12;
/// Rounds a pool cut may sit unselected before it is dropped.
const MAX_AGE: u32 = 3;
/// Minimum normalized violation for a cut to be worth activating.
const MIN_VIOLATION: f64 = 1e-5;
/// Maximum ratio of largest to smallest cut coefficient; beyond this the
/// cut is numerically untrustworthy and discarded.
const MAX_DYNAMISM: f64 = 1e7;
/// Gomory fractionality guard: `f0` must sit this far inside (0, 1).
const F0_MIN: f64 = 1e-3;

/// Counters of the cut engine and pseudocost branching, merged into
/// [`crate::SolveTelemetry`] when the solve finishes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CutCounters {
    /// Valid, violated cuts produced by the separators.
    pub separated: usize,
    /// Cuts activated into the LP relaxation.
    pub applied: usize,
    /// Pool cuts dropped after sitting unselected for too many rounds.
    pub aged_out: usize,
    /// Pseudocost observations recorded from solved child nodes.
    pub pseudocost_updates: usize,
    /// LPs solved by reliability (strong) branching at the root.
    pub strong_branch_lps: usize,
}

/// One globally valid cut in `Σ terms ≤ rhs` form, normalized so the
/// largest coefficient magnitude is 1.
#[derive(Debug, Clone)]
pub(crate) struct Cut {
    pub terms: Vec<(usize, f64)>,
    pub rhs: f64,
    /// Separator that produced it (row naming / diagnostics).
    pub origin: &'static str,
}

impl Cut {
    /// Violation at `x`: positive when the cut is violated.
    pub fn violation(&self, x: &[f64]) -> f64 {
        let lhs: f64 = self.terms.iter().map(|&(j, c)| c * x[j]).sum();
        lhs - self.rhs
    }

    /// Stable dedup key over rounded coefficients.
    fn key(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for &(j, c) in &self.terms {
            j.hash(&mut h);
            ((c * 1e8).round() as i64).hash(&mut h);
        }
        ((self.rhs * 1e8).round() as i64).hash(&mut h);
        h.finish()
    }
}

/// Pool of separated-but-not-yet-activated cuts. Selection is by
/// violation at the current LP point; unselected cuts age and are
/// eventually dropped so the pool cannot grow without bound.
#[derive(Debug, Default)]
pub(crate) struct CutPool {
    cuts: Vec<(Cut, u32)>,
    seen: std::collections::HashSet<u64>,
}

impl CutPool {
    /// Offer a cut to the pool; duplicates (by rounded coefficients) are
    /// rejected. Returns whether the cut was admitted.
    pub fn offer(&mut self, cut: Cut) -> bool {
        if self.seen.insert(cut.key()) {
            self.cuts.push((cut, 0));
            true
        } else {
            false
        }
    }

    /// Number of cuts currently pooled.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.cuts.len()
    }

    /// Pull up to `budget` most-violated cuts at `x` out of the pool,
    /// aging everything left behind and dropping cuts past [`MAX_AGE`]
    /// (`counters.aged_out` records how many).
    pub fn select(&mut self, x: &[f64], budget: usize, counters: &mut CutCounters) -> Vec<Cut> {
        let mut scored: Vec<(f64, usize)> = self
            .cuts
            .iter()
            .enumerate()
            .filter_map(|(i, (c, _))| {
                let v = c.violation(x);
                (v > MIN_VIOLATION).then_some((v, i))
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(budget);
        let picked: std::collections::HashSet<usize> = scored.iter().map(|&(_, i)| i).collect();
        let mut out = Vec::with_capacity(picked.len());
        let mut kept = Vec::with_capacity(self.cuts.len());
        for (i, (cut, age)) in std::mem::take(&mut self.cuts).into_iter().enumerate() {
            if picked.contains(&i) {
                out.push(cut);
            } else if age + 1 > MAX_AGE {
                counters.aged_out += 1;
            } else {
                kept.push((cut, age + 1));
            }
        }
        self.cuts = kept;
        // Preserve the violation ordering in the returned batch.
        out.sort_by(|a, b| b.violation(x).total_cmp(&a.violation(x)));
        out
    }
}

/// Append `cut` to `model` as an ordinary `Le` row.
pub(crate) fn apply_cut(model: &mut Model, cut: &Cut, seq: usize) {
    let mut expr = LinExpr::zero();
    for &(j, c) in &cut.terms {
        expr.add_term(VarId(j), c);
    }
    model.le(format!("cut:{}:{}", cut.origin, seq), expr, cut.rhs);
}

/// Normalize to unit inf-norm, drop negligible coefficients (weakening the
/// rhs to stay valid), and apply the numerical-quality filters. Returns
/// `None` when the cut should be discarded. `bounds` are the root
/// structural bounds used for the weakening step.
fn finalize(
    mut terms: Vec<(usize, f64)>,
    mut rhs: f64,
    bounds: &[(f64, f64)],
    x: &[f64],
    origin: &'static str,
) -> Option<Cut> {
    let max_c = terms.iter().fold(0.0f64, |a, &(_, c)| a.max(c.abs()));
    if max_c <= 1e-12 {
        return None;
    }
    let inv = 1.0 / max_c;
    for t in &mut terms {
        t.1 *= inv;
    }
    rhs *= inv;
    // Drop tiny coefficients, weakening the rhs so the cut stays valid:
    // `c_j x_j >= min(c_j l_j, c_j u_j)` bounds the dropped term.
    let mut kept = Vec::with_capacity(terms.len());
    for (j, c) in terms {
        if c.abs() >= 1e-9 {
            kept.push((j, c));
            continue;
        }
        let (l, u) = bounds[j];
        let lo = (c * l).min(c * u);
        if !lo.is_finite() {
            return None;
        }
        rhs -= lo;
    }
    if kept.is_empty() {
        return None;
    }
    let min_c = kept.iter().fold(f64::INFINITY, |a, &(_, c)| a.min(c.abs()));
    if 1.0 / min_c > MAX_DYNAMISM {
        return None;
    }
    let cut = Cut { terms: kept, rhs, origin };
    (cut.violation(x) > MIN_VIOLATION).then_some(cut)
}

/// Derive Gomory mixed-integer cuts from the fractional tableau rows of
/// an optimal LP over `lp_model`, shifted against `root_bounds` so every
/// cut is globally valid. `int_mask` marks integral structural variables.
pub(crate) fn separate_gomory(
    lp_model: &Model,
    tab: &TableauLp,
    root_bounds: &[(f64, f64)],
    int_mask: &[bool],
) -> Vec<Cut> {
    let n = lp_model.num_vars();
    let cons = lp_model.constraints();
    let x = &tab.values[..n.min(tab.values.len())];
    tab.frac_rows
        .iter()
        .filter_map(|row| gomory_from_row(lp_model, row, tab, root_bounds, int_mask, cons, x))
        .collect()
}

/// Resting-side shift bound of nonbasic variable `j`: root bounds for
/// structural columns, the slack's own (model-determined) bounds for
/// slack columns. Returns `(shift_bound, at_lower)`; `None` when the
/// variable rests on an infinite bound (no valid shift — abandon).
fn shift_of(
    j: usize,
    n: usize,
    stat: TabStat,
    root_bounds: &[(f64, f64)],
    cons: &[crate::model::Constraint],
) -> Option<(f64, bool)> {
    let (lb, ub) = if j < n {
        root_bounds[j]
    } else {
        match cons[j - n].cmp {
            Cmp::Le => (0.0, f64::INFINITY),
            Cmp::Ge => (f64::NEG_INFINITY, 0.0),
            Cmp::Eq => (0.0, 0.0),
        }
    };
    match stat {
        TabStat::AtLower => lb.is_finite().then_some((lb, true)),
        TabStat::AtUpper => ub.is_finite().then_some((ub, false)),
        // Free nonbasics cannot be shifted; basic columns never appear.
        TabStat::Free | TabStat::Basic => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn gomory_from_row(
    lp_model: &Model,
    row: &FracRow,
    tab: &TableauLp,
    root_bounds: &[(f64, f64)],
    int_mask: &[bool],
    cons: &[crate::model::Constraint],
    x: &[f64],
) -> Option<Cut> {
    let n = lp_model.num_vars();
    // Shift every nonbasic column to its resting bound: x_B = β̂ − Σ ĝ_j t_j
    // with t_j ≥ 0 globally (root-bound shifts). ĝ_j = ±a_j by side;
    // β̂ = β + Σ ĝ_j t*_j where t*_j is the current resting distance.
    let mut shifted: Vec<(usize, f64, f64, bool)> = Vec::with_capacity(row.coeffs.len());
    let mut beta_hat = row.beta;
    for &(j, a) in &row.coeffs {
        let stat = tab.stat[j];
        // Fixed slacks (Eq rows, including none today) are identically at
        // their bound; their t is 0 in every solution, so the term drops.
        if j >= n && cons[j - n].cmp == Cmp::Eq {
            continue;
        }
        let (shift, at_lower) = shift_of(j, n, stat, root_bounds, cons)?;
        let g = if at_lower { a } else { -a };
        let t_star = if at_lower { tab.values[j] - shift } else { shift - tab.values[j] };
        let t_star = t_star.max(0.0);
        beta_hat += g * t_star;
        shifted.push((j, g, shift, at_lower));
    }
    let f0 = beta_hat - beta_hat.floor();
    if !(F0_MIN..=1.0 - F0_MIN).contains(&f0) {
        return None;
    }
    // GMI coefficients in t-space: Σ γ_j t_j ≥ f0.
    // Integer columns use the fractional-part rule, continuous columns the
    // sign rule; slack columns are always treated as continuous.
    let mut terms = vec![0.0f64; n];
    let mut rhs = f0;
    for (j, g, shift, at_lower) in shifted {
        let integral = j < n
            && int_mask[j]
            && (shift - shift.round()).abs() < 1e-9;
        let gamma = if integral {
            let fj = g - g.floor();
            if fj <= f0 + 1e-12 {
                fj
            } else {
                f0 * (1.0 - fj) / (1.0 - f0)
            }
        } else if g >= 0.0 {
            g
        } else {
            -f0 * g / (1.0 - f0)
        };
        if gamma.abs() <= 1e-13 {
            continue;
        }
        // Substitute t_j back into structural variables.
        if j < n {
            if at_lower {
                // t = x_j − shift
                terms[j] += gamma;
                rhs += gamma * shift;
            } else {
                // t = shift − x_j
                terms[j] -= gamma;
                rhs -= gamma * shift;
            }
        } else {
            // Slack definition in the equilibrated space the tableau was
            // computed in: s_i = rhs_i/σ − Σ (c/σ)·x.
            let con = &cons[j - n];
            let sigma = row_scale(con);
            let b_t = con.rhs / sigma;
            if at_lower {
                // t = s − shift = (b̃ − shift) − Σ ã x: the constant
                // γ(b̃ − shift) moves to the rhs with its sign flipped.
                for &(v, c) in &con.terms {
                    terms[v.index()] -= gamma * (c / sigma);
                }
                rhs -= gamma * (b_t - shift);
            } else {
                // t = shift − s = (shift − b̃) + Σ ã x: likewise the
                // constant γ(shift − b̃) moves across.
                for &(v, c) in &con.terms {
                    terms[v.index()] += gamma * (c / sigma);
                }
                rhs -= gamma * (shift - b_t);
            }
        }
    }
    // Σ terms ≥ rhs  →  Le form.
    let le_terms: Vec<(usize, f64)> = terms
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c.abs() > 1e-13)
        .map(|(j, &c)| (j, -c))
        .collect();
    finalize(le_terms, -rhs, root_bounds, x, "gomory")
}

/// Separate knapsack cover cuts from `Le` capacity rows: for a row
/// `Σ a_j x_j ≤ b` and a set `C` of binary columns with positive
/// coefficients whose weights exceed the capacity left over by the other
/// terms' minimum contribution, `Σ_{j∈C} x_j ≤ |C|−1` is valid. The
/// greedy separation picks the cover most violated by `x`. Only the
/// first `orig_rows` rows are scanned (cut rows never yield covers).
pub(crate) fn separate_covers(
    model: &Model,
    orig_rows: usize,
    x: &[f64],
    root_bounds: &[(f64, f64)],
    int_mask: &[bool],
) -> Vec<Cut> {
    let mut out = Vec::new();
    for con in model.constraints().iter().take(orig_rows) {
        if con.cmp != Cmp::Le || con.terms.len() < 2 {
            continue;
        }
        let mut bins: Vec<(usize, f64)> = Vec::new();
        let mut residual = con.rhs;
        let mut ok = true;
        for &(v, c) in &con.terms {
            let j = v.index();
            let (l, u) = root_bounds[j];
            if int_mask[j] && c > 0.0 && l == 0.0 && u == 1.0 {
                bins.push((j, c));
            } else {
                // Everything else contributes at least its minimum.
                let lo = (c * l).min(c * u);
                if !lo.is_finite() {
                    ok = false;
                    break;
                }
                residual -= lo;
            }
        }
        if !ok || bins.len() < 2 {
            continue;
        }
        // Greedy minimal cover: take items by ascending (1−x*)/a until the
        // capacity is exceeded.
        let total: f64 = bins.iter().map(|&(_, a)| a).sum();
        if total <= residual + 1e-9 {
            continue;
        }
        bins.sort_by(|p, q| {
            let kp = (1.0 - x[p.0]).max(0.0) / p.1;
            let kq = (1.0 - x[q.0]).max(0.0) / q.1;
            kp.total_cmp(&kq).then(p.0.cmp(&q.0))
        });
        let mut cover: Vec<usize> = Vec::new();
        let mut weight = 0.0;
        for &(j, a) in &bins {
            cover.push(j);
            weight += a;
            if weight > residual + 1e-9 {
                break;
            }
        }
        if weight <= residual + 1e-9 || cover.len() < 2 {
            continue;
        }
        let rhs = (cover.len() - 1) as f64;
        let terms: Vec<(usize, f64)> = cover.into_iter().map(|j| (j, 1.0)).collect();
        if let Some(cut) = finalize(terms, rhs, root_bounds, x, "cover") {
            out.push(cut);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::simplex::solve_lp_tableau;

    fn int_mask(m: &Model) -> Vec<bool> {
        m.vars().iter().map(|v| v.is_integral()).collect()
    }

    fn bounds_of(m: &Model) -> Vec<(f64, f64)> {
        m.vars().iter().map(|v| (v.lb, v.ub)).collect()
    }

    /// 2x ≤ 1 over an integer x has the fractional root vertex x = 0.5;
    /// the Gomory cut must recover x ≤ 0.
    #[test]
    fn gomory_closes_simple_fraction() {
        let mut m = Model::new();
        let x = m.integer("x", 0.0, 10.0);
        m.le("cap", LinExpr::term(x, 2.0), 1.0);
        m.set_objective(LinExpr::term(x, 1.0), Sense::Maximize);
        let bounds = bounds_of(&m);
        let mask = int_mask(&m);
        let tab = solve_lp_tableau(&m, &bounds, None, &mask, 1e-6, 8).unwrap();
        let cuts = separate_gomory(&m, &tab, &bounds, &mask);
        assert!(!cuts.is_empty(), "expected a Gomory cut at x=0.5");
        // The cut must be satisfied by every integer point (x = 0) and
        // violated by the LP vertex x* = 0.5.
        for cut in &cuts {
            assert!(cut.violation(&[0.0]) <= 1e-9, "cut off the integer optimum");
            assert!(cut.violation(&[0.5]) > 0.0, "cut does not separate the vertex");
        }
    }

    /// Cover cuts on a small knapsack: 3x+3y+3z ≤ 5 with binaries means
    /// any two items overflow, so x+y ≤ 1 (etc.) — the fractional point
    /// (5/6 each... LP vertex) must be separated.
    #[test]
    fn cover_separates_knapsack_vertex() {
        let mut m = Model::new();
        let mut obj = LinExpr::zero();
        let mut cap = LinExpr::zero();
        for name in ["x", "y", "z"] {
            let v = m.binary(name);
            obj += LinExpr::term(v, 1.0);
            cap += LinExpr::term(v, 3.0);
        }
        m.le("cap", cap, 5.0);
        m.set_objective(obj, Sense::Maximize);
        let bounds = bounds_of(&m);
        let mask = int_mask(&m);
        // LP optimum puts 5/9 on each... solve to get the exact vertex.
        let tab = solve_lp_tableau(&m, &bounds, None, &mask, 1e-6, 8).unwrap();
        let x: Vec<f64> = match &tab.result {
            crate::LpResult::Optimal { x, .. } => x.clone(),
            other => panic!("unexpected LP result {other:?}"),
        };
        let cuts = separate_covers(&m, m.num_constraints(), &x, &bounds, &mask);
        assert!(!cuts.is_empty(), "expected a violated cover cut");
        for cut in &cuts {
            // Valid at every feasible integer point (only singletons fit).
            for p in [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] {
                assert!(cut.violation(&p) <= 1e-9);
            }
            assert!(cut.violation(&x) > 0.0);
        }
    }

    /// The pool dedups, selects by violation, and ages out stale cuts.
    #[test]
    fn pool_lifecycle() {
        let mut pool = CutPool::default();
        let mut counters = CutCounters::default();
        let weak = Cut { terms: vec![(0, 1.0)], rhs: 5.0, origin: "t" };
        let strong = Cut { terms: vec![(0, 1.0), (1, 1.0)], rhs: 0.5, origin: "t" };
        assert!(pool.offer(weak.clone()));
        assert!(!pool.offer(weak), "duplicate admitted");
        assert!(pool.offer(strong));
        // x violates only the strong cut.
        let picked = pool.select(&[1.0, 1.0], 4, &mut counters);
        assert_eq!(picked.len(), 1);
        assert_eq!(pool.len(), 1);
        // The weak cut ages out after MAX_AGE idle selections.
        for _ in 0..MAX_AGE {
            assert!(pool.select(&[0.0, 0.0], 4, &mut counters).is_empty());
        }
        assert_eq!(pool.len(), 0);
        assert_eq!(counters.aged_out, 1);
    }
}

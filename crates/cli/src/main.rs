//! `p4allc` — the P4All command-line compiler.
//!
//! ```text
//! p4allc PROGRAM.p4all [options]
//! p4allc --tenant A.p4all:W [--tenant B.p4all:W ...] [options]
//!
//!   --target NAME        tofino | paper-eval | paper-example | small
//!                        (default: tofino)
//!   --tenant FILE[:W]    repeatable: jointly compile FILE as one tenant
//!                        with utility weight W (default 1). All tenants
//!                        share ONE pipeline; the solver maximizes the
//!                        weighted sum of their utilities. Mutually
//!                        exclusive with a positional PROGRAM
//!   --stages N           override pipeline stage count
//!   --memory BITS        override per-stage register memory
//!   --stateful-alus N    override stateful ALUs per stage
//!   --stateless-alus N   override stateless ALUs per stage
//!   --phv BITS           override PHV size
//!   --emit WHAT          p4 | layout | stats | all   (default: all)
//!   --out FILE           write the generated P4 to FILE
//!   --threads N          ILP solver worker threads (0 = all cores,
//!                        the default; 1 = exact sequential search)
//!   --greedy             use the greedy first-fit allocator instead of
//!                        the ILP (baseline / quick feasibility check)
//!   --sim N              after compiling, replay N synthetic packets
//!                        through the behavioral simulator and report
//!                        throughput, drops, and per-stage cost
//!   --sim-backend B      interp | compiled | native   (default: compiled;
//!                        native generates Rust, compiles it with the
//!                        in-container rustc, and runs it as a cdylib)
//!   --sim-threads N      replay worker threads (0 = all cores;
//!                        default 1 = sequential; capped at the
//!                        machine's available parallelism)
//!   --sim-batch N        SoA batch width for replay (0 = scalar, the
//!                        default; batch-unsafe programs fall back to
//!                        the scalar loop; replay reports the width
//!                        that actually ran)
//!   --timings            print the per-pass compile trace (wall time,
//!                        artifact sizes, cache hits)
//!   --json-diagnostics   also emit diagnostics as one stable-schema JSON
//!                        object on stdout: {"diagnostics": [...]}
//! ```
//!
//! Exit codes: `0` success, `1` usage error, `2` invalid source (or
//! unreadable input), `3` no feasible layout on the target, `4` solver
//! failure or limit, `5` internal compiler error.

use std::fmt::Write as _;
use std::process::ExitCode;

use p4all_core::{
    merge_tenants, CompileCtx, CompileError, CompileOptions, Compilation, Compiler,
    TenantProgram, TenantReport,
};
use p4all_lang::diag::Diagnostic;
use p4all_lang::Tenant;
use p4all_pisa::{presets, TargetSpec};
use p4all_sim::{Backend, Switch};

struct Args {
    input: Option<String>,
    /// `--tenant FILE[:W]` specs, in order.
    tenants: Vec<String>,
    target: TargetSpec,
    emit_p4: bool,
    emit_layout: bool,
    emit_stats: bool,
    out: Option<String>,
    threads: usize,
    greedy: bool,
    sim: Option<u64>,
    sim_backend: Backend,
    sim_threads: usize,
    sim_batch: usize,
    timings: bool,
    json_diagnostics: bool,
}

/// A run failure: the per-class exit code, the human-readable report for
/// stderr, and the machine-readable diagnostics for `--json-diagnostics`.
struct Failure {
    code: u8,
    human: String,
    diagnostics: Vec<Diagnostic>,
}

impl Failure {
    /// An input/IO failure (same exit class as invalid source).
    fn io(message: String) -> Self {
        Failure { code: 2, human: message.clone(), diagnostics: vec![Diagnostic::error(message)] }
    }

    fn compile(e: CompileError, src: &str, file: &str) -> Self {
        let human = match e.diagnostic() {
            Some(d) => d.render(src, file),
            None => format!("{e}"),
        };
        let diagnostics = match e.diagnostic() {
            Some(d) => vec![d.clone()],
            None => vec![Diagnostic::error(e.to_string())],
        };
        Failure { code: e.exit_class(), human, diagnostics }
    }
}

/// The stable `--json-diagnostics` payload: one object per line of output.
fn json_report(diagnostics: &[Diagnostic]) -> String {
    let body: Vec<String> = diagnostics.iter().map(|d| d.to_json()).collect();
    format!("{{\"diagnostics\":[{}]}}", body.join(","))
}

fn usage() -> &'static str {
    "usage: p4allc PROGRAM.p4all | --tenant FILE[:WEIGHT] ... \
     [--target tofino|paper-eval|paper-example|small] \
     [--stages N] [--memory BITS] [--stateful-alus N] [--stateless-alus N] \
     [--phv BITS] [--emit p4|layout|stats|all] [--out FILE] [--threads N] [--greedy] \
     [--sim N] [--sim-backend interp|compiled|native] [--sim-threads N] [--sim-batch N] \
     [--timings] [--json-diagnostics]"
}

fn parse_args() -> Result<Args, String> {
    let mut input: Option<String> = None;
    let mut tenants: Vec<String> = Vec::new();
    let mut target = presets::tofino_like();
    let mut emit = "all".to_string();
    let mut out = None;
    let mut threads = 0usize;
    let mut greedy = false;
    let mut sim = None;
    let mut sim_backend = Backend::Compiled;
    let mut sim_threads = 1usize;
    let mut sim_batch = 0usize;
    let mut timings = false;
    let mut json_diagnostics = false;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--target" => {
                target = match next(&mut i, "--target")?.as_str() {
                    "tofino" => presets::tofino_like(),
                    "paper-eval" => presets::paper_eval(1_750_000),
                    "paper-example" => presets::paper_example(),
                    "small" => presets::small_switch(),
                    other => return Err(format!("unknown target `{other}`")),
                };
            }
            "--stages" => {
                target.stages = next(&mut i, "--stages")?
                    .parse()
                    .map_err(|_| "--stages needs an integer".to_string())?;
            }
            "--memory" => {
                target.memory_bits = next(&mut i, "--memory")?
                    .parse()
                    .map_err(|_| "--memory needs an integer".to_string())?;
            }
            "--stateful-alus" => {
                target.stateful_alus = next(&mut i, "--stateful-alus")?
                    .parse()
                    .map_err(|_| "--stateful-alus needs an integer".to_string())?;
            }
            "--stateless-alus" => {
                target.stateless_alus = next(&mut i, "--stateless-alus")?
                    .parse()
                    .map_err(|_| "--stateless-alus needs an integer".to_string())?;
            }
            "--phv" => {
                target.phv_bits = next(&mut i, "--phv")?
                    .parse()
                    .map_err(|_| "--phv needs an integer".to_string())?;
            }
            "--tenant" => tenants.push(next(&mut i, "--tenant")?),
            "--emit" => emit = next(&mut i, "--emit")?,
            "--out" => out = Some(next(&mut i, "--out")?),
            "--threads" => {
                threads = next(&mut i, "--threads")?
                    .parse()
                    .map_err(|_| "--threads needs an integer".to_string())?;
            }
            "--greedy" => greedy = true,
            "--timings" => timings = true,
            "--json-diagnostics" => json_diagnostics = true,
            "--sim" => {
                sim = Some(
                    next(&mut i, "--sim")?
                        .parse()
                        .map_err(|_| "--sim needs a packet count".to_string())?,
                );
            }
            "--sim-backend" => {
                sim_backend = match next(&mut i, "--sim-backend")?.as_str() {
                    "interp" => Backend::Interp,
                    "compiled" => Backend::Compiled,
                    "native" => Backend::Native,
                    other => return Err(format!("unknown --sim-backend `{other}`")),
                };
            }
            "--sim-threads" => {
                sim_threads = next(&mut i, "--sim-threads")?
                    .parse()
                    .map_err(|_| "--sim-threads needs an integer".to_string())?;
            }
            "--sim-batch" => {
                sim_batch = next(&mut i, "--sim-batch")?
                    .parse()
                    .map_err(|_| "--sim-batch needs an integer".to_string())?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()))
            }
            file => {
                if input.replace(file.to_string()).is_some() {
                    return Err("multiple input files".to_string());
                }
            }
        }
        i += 1;
    }
    match (&input, tenants.is_empty()) {
        (None, true) => return Err(usage().to_string()),
        (Some(_), false) => {
            return Err("give either PROGRAM.p4all or --tenant, not both".to_string())
        }
        _ => {}
    }
    let (emit_p4, emit_layout, emit_stats) = match emit.as_str() {
        "p4" => (true, false, false),
        "layout" => (false, true, false),
        "stats" => (false, false, true),
        "all" => (true, true, true),
        other => return Err(format!("unknown --emit `{other}` (p4|layout|stats|all)")),
    };
    target.validate().map_err(|e| format!("invalid target: {e}"))?;
    Ok(Args {
        input,
        tenants,
        target,
        emit_p4,
        emit_layout,
        emit_stats,
        out,
        threads,
        greedy,
        sim,
        sim_backend,
        sim_threads,
        sim_batch,
        timings,
        json_diagnostics,
    })
}

/// One `--tenant` input: the tenant program plus the file it came from
/// (for rendering that tenant's own diagnostics).
struct TenantFile {
    tp: TenantProgram,
    path: String,
}

/// Derive a tenant name from the file stem, sanitized to a plain
/// identifier (`apps/vlan.p4all` → `vlan`).
fn tenant_name(path: &str) -> String {
    let stem =
        std::path::Path::new(path).file_stem().and_then(|s| s.to_str()).unwrap_or("tenant");
    let mut name: String = stem
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if !name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_') {
        name.insert(0, 't');
    }
    name
}

/// Load `--tenant FILE[:WEIGHT]` specs: read each file, derive the tenant
/// name from its stem, default the weight to 1.
fn load_tenants(specs: &[String]) -> Result<Vec<TenantFile>, Failure> {
    let mut out = Vec::new();
    for spec in specs {
        let (path, weight) = match spec.rsplit_once(':') {
            Some((p, w)) => match w.parse::<f64>() {
                Ok(w) => (p.to_string(), w),
                Err(_) => (spec.clone(), 1.0),
            },
            None => (spec.clone(), 1.0),
        };
        let src = std::fs::read_to_string(&path)
            .map_err(|e| Failure::io(format!("cannot read {path}: {e}")))?;
        let tenant = Tenant::new(tenant_name(&path), weight)
            .map_err(|e| Failure::io(format!("--tenant {spec}: {e}")))?;
        out.push(TenantFile { tp: TenantProgram::new(tenant, src), path });
    }
    Ok(out)
}

/// Attribute a joint-compile failure: a tenant-tagged source error renders
/// against that tenant's own file; anything else (e.g. a joint
/// infeasibility) renders against the merged program's printed source.
fn joint_failure(e: CompileError, tenants: &[TenantFile]) -> Failure {
    if let Some(d) = e.diagnostic() {
        for t in tenants {
            let tag = format!("in tenant `{}`", t.tp.tenant.name);
            if d.notes.iter().any(|n| n.message.contains(&tag)) {
                return Failure {
                    code: e.exit_class(),
                    human: d.render(&t.tp.src, &t.path),
                    diagnostics: vec![d.clone()],
                };
            }
        }
        let tps: Vec<TenantProgram> = tenants.iter().map(|t| t.tp.clone()).collect();
        if let Ok(joint) = merge_tenants(&tps) {
            return Failure {
                code: e.exit_class(),
                human: d.render(&joint.src, "<joint>"),
                diagnostics: vec![d.clone()],
            };
        }
    }
    Failure {
        code: e.exit_class(),
        human: format!("{e}"),
        diagnostics: vec![Diagnostic::error(e.to_string())],
    }
}

/// The `--json-diagnostics` success payload of a joint compile: the empty
/// diagnostics list plus the per-tenant utility split.
fn json_tenant_report(reports: &[TenantReport]) -> String {
    let body: Vec<String> = reports
        .iter()
        .map(|r| {
            let u = match r.utility {
                Some(u) => format!("{u}"),
                None => "null".to_string(),
            };
            format!("{{\"name\":\"{}\",\"weight\":{},\"utility\":{}}}", r.name, r.weight, u)
        })
        .collect();
    format!("{{\"diagnostics\":[],\"tenants\":[{}]}}", body.join(","))
}

fn run(args: Args) -> Result<(), Failure> {
    eprintln!("target: {}", args.target);
    let options = CompileOptions::default().with_threads(args.threads);

    let (src, mut c, reports): (String, Compilation, Option<Vec<TenantReport>>) =
        if args.tenants.is_empty() {
            let input = args.input.clone().expect("parse_args guarantees an input");
            let src = std::fs::read_to_string(&input)
                .map_err(|e| Failure::io(format!("cannot read {input}: {e}")))?;
            let compiler = Compiler::with_options(args.target.clone(), options);
            if args.greedy {
                let layout = compiler
                    .compile_greedy(&src)
                    .map_err(|e| Failure::compile(e, &src, &input))?;
                println!("{}", layout.render());
                if args.json_diagnostics {
                    println!("{}", json_report(&[]));
                }
                return Ok(());
            }
            let c = compiler
                .compile(&src)
                .map_err(|e| Failure::compile(e, &src, &input))?;
            (src, c, None)
        } else {
            let files = load_tenants(&args.tenants)?;
            let tps: Vec<TenantProgram> = files.iter().map(|f| f.tp.clone()).collect();
            let mut ctx = CompileCtx::new(options);
            if args.greedy {
                let joint = merge_tenants(&tps).map_err(|e| joint_failure(e, &files))?;
                let (layout, _trace) = ctx
                    .compile_greedy(&joint.src, &args.target)
                    .map_err(|e| Failure::compile(e, &joint.src, "<joint>"))?;
                println!("{}", layout.render());
                if args.json_diagnostics {
                    println!("{}", json_report(&[]));
                }
                return Ok(());
            }
            let jc =
                ctx.compile_joint(&tps, &args.target).map_err(|e| joint_failure(e, &files))?;
            eprintln!("joint compile: {} tenants, one pipeline", jc.tenants.len());
            (jc.joint.src, jc.compilation, Some(jc.tenants))
        };
    // Build the simulator up front when requested: preparing the native
    // backend here registers its codegen + rustc phases in the compile
    // trace before --timings renders it.
    let mut sim_switch = None;
    if args.sim.is_some() {
        let program = p4all_lang::parse(&src).map_err(|e| {
            Failure::compile(CompileError::from(e), &src, args.input.as_deref().unwrap_or("<joint>"))
        })?;
        let mut sw = Switch::build(&c.concrete, &program)
            .map_err(|e| Failure::io(format!("simulator: {e}")))?;
        sw.set_backend(args.sim_backend);
        if args.sim_backend == Backend::Native {
            let report = sw
                .prepare_native()
                .map_err(|e| Failure::io(format!("native backend: {e}")))?;
            c.trace.record(
                "native-gen",
                false,
                report.gen_time,
                format!("{} bytes of Rust", report.source_bytes),
            );
            c.trace.record("native-rustc", false, report.rustc_time, "cdylib".to_string());
        }
        sim_switch = Some(sw);
    }
    // Replay before --timings renders: the replay's batch width and
    // pipeline-overlap occupancy are recorded into the compile trace.
    let mut replay_stats = None;
    if let Some(packets) = args.sim {
        let mut sw = sim_switch.take().expect("built above when --sim is set");
        sw.set_batch_width(args.sim_batch);
        let trace = synth_trace(&sw, packets);
        let stats = sw.run_trace(&trace, args.sim_threads);
        c.trace.record(
            "sim-replay",
            false,
            stats.elapsed,
            format!(
                "{} pkts, {} thread(s), batch width {}, occupancy {:.0}%",
                stats.packets,
                stats.threads,
                stats.batch_width,
                100.0 * stats.overlap_occupancy
            ),
        );
        replay_stats = Some(stats);
    }
    if args.timings {
        print!("{}", c.trace.render());
        let cc = &c.solve_stats.telemetry.cuts;
        if *cc != Default::default() {
            println!(
                "cut engine: {} cuts separated, {} applied, {} aged out; {} pseudocost updates, {} strong-branch LPs",
                cc.separated, cc.applied, cc.aged_out, cc.pseudocost_updates, cc.strong_branch_lps
            );
        }
        if let Some(reports) = &reports {
            println!("tenant utility split:");
            for r in reports {
                match r.utility {
                    Some(u) => println!(
                        "  {:<12} weight {:>6.2}  utility {:>12.2}",
                        r.name, r.weight, u
                    ),
                    None => println!("  {:<12} weight {:>6.2}  utility n/a", r.name, r.weight),
                }
            }
        }
    }
    if args.emit_layout {
        println!("{}", c.layout.render());
    }
    if args.emit_stats {
        println!("unroll bounds:");
        for (sym, k) in &c.upper_bounds {
            println!("  {sym} <= {k}");
        }
        println!("ILP: {}", c.ilp_stats);
        println!(
            "solve: {:?} in {:.3}s ({} nodes, {} LPs); total compile {:.3}s",
            c.solve_stats.status,
            c.timings.solve.as_secs_f64(),
            c.solve_stats.nodes,
            c.solve_stats.lp_solves,
            c.timings.total.as_secs_f64()
        );
        println!("solve summary:");
        for line in c.solve_stats.telemetry.summary().lines() {
            println!("  {line}");
        }
        println!("generated P4: {} lines", p4all_core::loc(&c.p4_text));
    }
    if let Some(stats) = &replay_stats {
        // Sharded replay always runs the bytecode engine; the backend
        // choice only steers single-threaded execution.
        let engine = if stats.threads > 1 { Backend::Compiled } else { args.sim_backend };
        let batch = if stats.batch_width >= 2 {
            format!(", batch width {}", stats.batch_width)
        } else if args.sim_batch >= 2 {
            ", scalar fallback (program is not batch-safe)".to_string()
        } else {
            String::new()
        };
        let occupancy = if stats.threads > 1 {
            format!(", occupancy {:.0}%", 100.0 * stats.overlap_occupancy)
        } else {
            String::new()
        };
        println!(
            "replay: {} packets, {} dropped, {} thread(s), {:.0} pkts/sec ({engine:?} backend{batch}{occupancy})",
            stats.packets,
            stats.dropped,
            stats.threads,
            stats.pkts_per_sec(),
        );
        let total = stats.total_cost().max(1);
        let split: Vec<String> = stats
            .stage_cost
            .iter()
            .map(|&c| format!("{:.1}%", 100.0 * c as f64 / total as f64))
            .collect();
        println!("stage cost: {}", split.join(" "));
    }
    match (&args.out, args.emit_p4) {
        (Some(path), _) => {
            std::fs::write(path, &c.p4_text)
                .map_err(|e| Failure::io(format!("cannot write {path}: {e}")))?;
            eprintln!("wrote {path}");
        }
        (None, true) => println!("{}", c.p4_text),
        _ => {}
    }
    if args.json_diagnostics {
        let base = match &reports {
            Some(rs) => json_tenant_report(rs),
            None => json_report(&[]),
        };
        // Splice a `solver` object into every success payload: node and
        // LP counts plus the cut-engine and pseudocost counters.
        let mut out = base;
        out.pop();
        let cc = &c.solve_stats.telemetry.cuts;
        let _ = write!(
            out,
            ",\"solver\":{{\"nodes\":{},\"lp_solves\":{},\"cuts_separated\":{},\"cuts_applied\":{},\"cuts_aged_out\":{},\"pseudocost_updates\":{},\"strong_branch_lps\":{}}}",
            c.solve_stats.nodes,
            c.solve_stats.lp_solves,
            cc.separated,
            cc.applied,
            cc.aged_out,
            cc.pseudocost_updates,
            cc.strong_branch_lps
        );
        match &replay_stats {
            // And a `replay` object when --sim ran, exposing the batch
            // width and pipeline-overlap occupancy.
            Some(s) => {
                println!(
                    "{out},\"replay\":{{\"packets\":{},\"dropped\":{},\"threads\":{},\"batch_width\":{},\"overlap_occupancy\":{:.3},\"pkts_per_sec\":{:.0}}}}}",
                    s.packets,
                    s.dropped,
                    s.threads,
                    s.batch_width,
                    s.overlap_occupancy,
                    s.pkts_per_sec()
                );
            }
            None => println!("{out}}}"),
        }
    }
    Ok(())
}

/// Deterministic synthetic trace: every header field of every packet gets
/// a pseudorandom value in `0..1024` (bounded so hash indices and table
/// keys repeat across packets, exercising flow locality).
fn synth_trace(sw: &Switch, packets: u64) -> Vec<p4all_sim::Phv> {
    let fields = sw.header_fields();
    let mut out = Vec::with_capacity(packets as usize);
    let mut state = 0x243f_6a88_85a3_08d3u64;
    for _ in 0..packets {
        let vals: Vec<(String, u64)> = fields
            .iter()
            .map(|f| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                (f.clone(), (state >> 33) % 1024)
            })
            .collect();
        let refs: Vec<(&str, u64)> = vals.iter().map(|(f, v)| (f.as_str(), *v)).collect();
        out.push(sw.make_packet(&refs).expect("fields come from header_fields"));
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    let json = args.json_diagnostics;
    match run(args) {
        // Success JSON (including the joint-compile tenant split) is
        // printed inside `run`, which knows the compile mode.
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            // Rendered diagnostics already carry their own `error:` prefix.
            if f.human.starts_with("error") || f.human.starts_with("internal error") {
                eprint!("{}", f.human);
            } else {
                eprint!("error: {}", f.human);
            }
            if !f.human.ends_with('\n') {
                eprintln!();
            }
            if json {
                println!("{}", json_report(&f.diagnostics));
            }
            ExitCode::from(f.code)
        }
    }
}

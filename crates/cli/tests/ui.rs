//! Golden "ui" tests for compiler diagnostics.
//!
//! Each `tests/ui/<case>.p4all` source is compiled with the real `p4allc`
//! binary against the `paper-example` target; the exit code and rendered
//! stderr are compared against the checked-in `tests/ui/<case>.stderr`
//! snapshot. Regenerate snapshots after an intentional diagnostics change
//! with:
//!
//! ```text
//! UPDATE_UI=1 cargo test -p p4allc --test ui
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

fn ui_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/ui")
}

/// Run the CLI on one ui case and return `exit: N\n` + stderr.
///
/// The binary runs with the ui directory as its working directory and a
/// relative source path, so the `--> file:line:col` anchors in the
/// snapshot stay machine-independent.
fn run_case(case: &str, extra: &[&str]) -> (String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_p4allc"));
    cmd.arg(format!("{case}.p4all"));
    finish(cmd, extra)
}

/// Run the CLI in joint (multi-tenant) mode; `tenants` are raw `--tenant`
/// specs (`file.p4all[:weight]`) relative to the ui directory.
fn run_tenant_case(tenants: &[&str], extra: &[&str]) -> (String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_p4allc"));
    for t in tenants {
        cmd.args(["--tenant", t]);
    }
    finish(cmd, extra)
}

fn finish(mut cmd: Command, extra: &[&str]) -> (String, String) {
    cmd.current_dir(ui_dir())
        .args(["--target", "paper-example", "--emit", "layout"])
        .args(extra);
    let out = cmd.output().expect("run p4allc");
    let code = out.status.code().unwrap_or(-1);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    // The CLI banner (`target: ...`) goes to stderr before any failure;
    // keep it out of the snapshot so target tweaks don't churn every file.
    let stderr: String = stderr
        .lines()
        .filter(|l| !l.starts_with("target: "))
        .map(|l| format!("{l}\n"))
        .collect();
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (format!("exit: {code}\n{stderr}"), stdout)
}

fn check_snapshot(case: &str) {
    let (got, _) = run_case(case, &[]);
    check_against(case, got);
}

fn check_against(case: &str, got: String) {
    let snap = ui_dir().join(format!("{case}.stderr"));
    if std::env::var_os("UPDATE_UI").is_some() {
        std::fs::write(&snap, &got).expect("write snapshot");
        return;
    }
    let want = std::fs::read_to_string(&snap)
        .unwrap_or_else(|e| panic!("missing snapshot {}: {e}\nrun with UPDATE_UI=1 to create it", snap.display()));
    assert_eq!(
        got, want,
        "\n--- ui snapshot mismatch for `{case}` ---\nexpected:\n{want}\nactual:\n{got}\nrun with UPDATE_UI=1 to bless\n"
    );
}

#[test]
fn ui_lex_error() {
    check_snapshot("lex_error");
}

#[test]
fn ui_parse_error() {
    check_snapshot("parse_error");
}

#[test]
fn ui_unknown_symbolic() {
    check_snapshot("unknown_symbolic");
}

#[test]
fn ui_unroll_cap_exceeded() {
    check_snapshot("unroll_cap_exceeded");
}

#[test]
fn ui_infeasible_target() {
    check_snapshot("infeasible_target");
}

/// Two tenants that fit the paper-example pipeline alone but not
/// together: the joint diagnostic must name both tenants and the shared
/// resource, with anchors into both tenants' spans of the merged source.
#[test]
fn ui_joint_infeasible() {
    let (got, _) = run_tenant_case(&["joint_filter.p4all:2.0", "joint_routes.p4all"], &[]);
    check_against("joint_infeasible", got);
}

#[test]
fn json_diagnostics_emits_machine_readable_errors() {
    let (text, stdout) = run_case("parse_error", &["--json-diagnostics"]);
    assert!(text.starts_with("exit: 2\n"), "got: {text}");
    assert!(
        stdout.contains("{\"diagnostics\":["),
        "json payload missing from stdout: {stdout}"
    );
    assert!(
        stdout.contains("\"severity\":\"error\""),
        "json payload lacks severity: {stdout}"
    );
    assert!(stdout.contains("\"span\":"), "json payload lacks span: {stdout}");
}

#[test]
fn json_diagnostics_empty_on_success() {
    // A fits-fine plain-P4 source: reuse the infeasible case but on a
    // target with enough stages via --stages override.
    let (text, stdout) = run_case("infeasible_target", &["--json-diagnostics", "--stages", "8"]);
    assert!(text.starts_with("exit: 0\n"), "got: {text}");
    assert!(
        stdout.contains("{\"diagnostics\":[],\"solver\":{"),
        "expected empty diagnostics array plus solver counters on success: {stdout}"
    );
    assert!(
        stdout.contains("\"cuts_applied\":") && stdout.contains("\"pseudocost_updates\":"),
        "solver object lacks cut-engine counters: {stdout}"
    );
}

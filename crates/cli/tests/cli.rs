//! End-to-end tests of the `p4allc` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_p4allc"))
}

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/p4all").join(name)
}

#[test]
fn compiles_cms_example() {
    let out = bin()
        .arg(example("cms.p4all"))
        .args(["--target", "paper-example", "--emit", "layout"])
        .output()
        .expect("p4allc runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("symbolic assignment"), "{stdout}");
    assert!(stdout.contains("rows ="), "{stdout}");
}

#[test]
fn emits_p4_to_file() {
    let dir = std::env::temp_dir().join("p4allc_test");
    std::fs::create_dir_all(&dir).unwrap();
    let out_file = dir.join("cms.p4");
    let out = bin()
        .arg(example("cms.p4all"))
        .args(["--target", "small", "--out"])
        .arg(&out_file)
        .output()
        .expect("p4allc runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let p4 = std::fs::read_to_string(&out_file).unwrap();
    assert!(p4.contains("@stage("));
    assert!(p4.contains("register<bit<32>>"));
}

#[test]
fn greedy_mode_prints_layout() {
    let out = bin()
        .arg(example("bloom_firewall.p4all"))
        .args(["--target", "small", "--greedy"])
        .output()
        .expect("p4allc runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("pipeline layout"));
}

#[test]
fn missing_file_exits_2() {
    let out = bin().arg("no_such_file.p4all").output().expect("p4allc runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_flag_exits_1() {
    let out = bin().arg("--frobnicate").output().expect("p4allc runs");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn parse_error_is_rendered_with_caret() {
    let dir = std::env::temp_dir().join("p4allc_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.p4all");
    std::fs::write(&bad, "symbolic int rows;\nassume rows >= oops;\n").unwrap();
    let out = bin().arg(&bad).output().expect("p4allc runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("^"), "no caret in: {err}");
}

#[test]
fn sim_flag_reports_replay_stats_on_both_backends() {
    for backend in ["compiled", "interp"] {
        let out = bin()
            .arg(example("cms.p4all"))
            .args(["--target", "paper-example", "--emit", "layout", "--sim", "2000"])
            .args(["--sim-backend", backend])
            .output()
            .expect("p4allc runs");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("replay: 2000 packets"), "{stdout}");
        assert!(stdout.contains("pkts/sec"), "{stdout}");
        assert!(stdout.contains("stage cost:"), "{stdout}");
    }
}

#[test]
fn sim_threads_shards_the_replay() {
    let out = bin()
        .arg(example("cms.p4all"))
        .args(["--target", "paper-example", "--emit", "layout"])
        .args(["--sim", "2000", "--sim-threads", "4"])
        .output()
        .expect("p4allc runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The shard count is capped at the machine's parallelism, so the
    // reported count is min(4, cores).
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let want = format!("{} thread(s)", 4.min(cores));
    assert!(stdout.contains(&want), "expected `{want}` in: {stdout}");
}

#[test]
fn sim_batch_reports_batched_replay() {
    let out = bin()
        .arg(example("cms.p4all"))
        .args(["--target", "paper-example", "--emit", "layout"])
        .args(["--sim", "2000", "--sim-batch", "32", "--json-diagnostics"])
        .output()
        .expect("p4allc runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The CMS example is batch-safe, so the requested width runs (the
    // human line and the JSON replay object both expose it).
    assert!(stdout.contains("batch width 32"), "{stdout}");
    assert!(stdout.contains("\"batch_width\":32"), "{stdout}");
    assert!(stdout.contains("\"overlap_occupancy\":"), "{stdout}");
}

#[test]
fn bad_sim_backend_exits_1() {
    let out = bin()
        .arg(example("cms.p4all"))
        .args(["--sim", "10", "--sim-backend", "jit"])
        .output()
        .expect("p4allc runs");
    assert_eq!(out.status.code(), Some(1));
}

//! Fixed-size, hand-laid-out P4 baselines.
//!
//! Stand-ins for the original hand-written P4 programs the paper compares
//! against in Figure 11: every loop is manually unrolled, every size is a
//! magic constant, and every repeated action is written out (the style of
//! the paper's Figure 5). The emitters below mechanically reproduce that
//! repetition — which is exactly what makes the baseline long — so the
//! line counts are an honest model of the hand-written artifact.
//!
//! Every baseline is valid *plain* P4 in this dialect (no symbolic
//! constructs) and compiles through the same pipeline, which pins the
//! sizes it hard-codes to a specific target: the paper's point about
//! non-portability.

use std::fmt::Write;

/// Hand-written NetCache: a 4x2048 CMS plus an 8-slice x 1024 value store.
pub fn netcache_p4() -> String {
    let rows = 4;
    let cols = 2048;
    let slices = 8;
    let kv_cols = 1024;
    let mut s = String::new();
    let _ = writeln!(s, "header pkt {{\n    bit<32> key;\n}}\n");
    let _ = writeln!(s, "struct metadata {{");
    for i in 0..rows {
        let _ = writeln!(s, "    bit<32> cms_index_{i};");
        let _ = writeln!(s, "    bit<32> cms_count_{i};");
    }
    let _ = writeln!(s, "    bit<32> cms_min;");
    let _ = writeln!(s, "    bit<8> kv_hit;");
    let _ = writeln!(s, "    bit<32> kv_slice;");
    let _ = writeln!(s, "    bit<32> kv_idx;");
    let _ = writeln!(s, "    bit<128> kv_val;");
    let _ = writeln!(s, "}}\n");
    for i in 0..rows {
        let _ = writeln!(s, "register<bit<32>>[{cols}] cms_{i};");
    }
    for j in 0..slices {
        let _ = writeln!(s, "register<bit<128>>[{kv_cols}] kvs_{j};");
    }
    let _ = writeln!(s);
    for i in 0..rows {
        let _ = writeln!(
            s,
            "action cms_incr_{i}() {{\n    meta.cms_index_{i} = hash(hdr.key, {cols});\n    \
             cms_{i}[meta.cms_index_{i}] = cms_{i}[meta.cms_index_{i}] + 1;\n    \
             meta.cms_count_{i} = cms_{i}[meta.cms_index_{i}];\n}}"
        );
    }
    for i in 0..rows {
        let _ = writeln!(
            s,
            "action cms_set_min_{i}() {{\n    meta.cms_min = meta.cms_count_{i};\n}}"
        );
    }
    let _ = writeln!(s, "action kv_hit_act() {{\n    meta.kv_hit = 1;\n}}");
    let _ = writeln!(s, "action kv_miss_act() {{\n    meta.kv_hit = 0;\n}}");
    for j in 0..slices {
        let _ = writeln!(
            s,
            "action kv_read_{j}() {{\n    meta.kv_val = kvs_{j}[meta.kv_idx];\n}}"
        );
    }
    let _ = writeln!(
        s,
        "table kv_cache {{\n    key = {{ hdr.key; }}\n    actions = {{ kv_hit_act; \
         kv_miss_act; }}\n    size = {};\n    default_action = kv_miss_act;\n}}",
        slices * kv_cols
    );
    let _ = writeln!(s, "\ncontrol Main() {{\n    apply {{");
    let _ = writeln!(s, "        kv_cache.apply();");
    for i in 0..rows {
        let _ = writeln!(s, "        cms_incr_{i}();");
    }
    for i in 0..rows {
        let _ = writeln!(
            s,
            "        if (meta.cms_count_{i} < meta.cms_min || meta.cms_min == 0) {{ \
             cms_set_min_{i}(); }}"
        );
    }
    for j in 0..slices {
        let _ = writeln!(
            s,
            "        if (meta.kv_hit == 1 && meta.kv_slice == {j}) {{ kv_read_{j}(); }}"
        );
    }
    let _ = writeln!(s, "    }}\n}}");
    s
}

/// Hand-written SketchLearn: four fixed 2x1024 sketch levels.
pub fn sketchlearn_p4() -> String {
    let levels = 4;
    let rows = 2;
    let cols = 1024;
    let mut s = String::new();
    let _ = writeln!(s, "header pkt {{\n    bit<32> key;\n}}\n");
    let _ = writeln!(s, "struct metadata {{");
    for l in 0..levels {
        for i in 0..rows {
            let _ = writeln!(s, "    bit<32> lv{l}_index_{i};");
            let _ = writeln!(s, "    bit<32> lv{l}_count_{i};");
        }
        let _ = writeln!(s, "    bit<32> lv{l}_min;");
    }
    let _ = writeln!(s, "}}\n");
    for l in 0..levels {
        for i in 0..rows {
            let _ = writeln!(s, "register<bit<32>>[{cols}] lv{l}_{i};");
        }
    }
    let _ = writeln!(s);
    for l in 0..levels {
        for i in 0..rows {
            let _ = writeln!(
                s,
                "action lv{l}_incr_{i}() {{\n    meta.lv{l}_index_{i} = hash(hdr.key, {cols});\n    \
                 lv{l}_{i}[meta.lv{l}_index_{i}] = lv{l}_{i}[meta.lv{l}_index_{i}] + 1;\n    \
                 meta.lv{l}_count_{i} = lv{l}_{i}[meta.lv{l}_index_{i}];\n}}"
            );
        }
        for i in 0..rows {
            let _ = writeln!(
                s,
                "action lv{l}_set_min_{i}() {{\n    meta.lv{l}_min = meta.lv{l}_count_{i};\n}}"
            );
        }
    }
    let _ = writeln!(s, "\ncontrol Main() {{\n    apply {{");
    for l in 0..levels {
        for i in 0..rows {
            let _ = writeln!(s, "        lv{l}_incr_{i}();");
        }
        for i in 0..rows {
            let _ = writeln!(
                s,
                "        if (meta.lv{l}_count_{i} < meta.lv{l}_min || meta.lv{l}_min == 0) {{ \
                 lv{l}_set_min_{i}(); }}"
            );
        }
    }
    let _ = writeln!(s, "    }}\n}}");
    s
}

/// Hand-written PRECISION: two fixed 512-slot tracking stages.
pub fn precision_p4() -> String {
    let stages = 2;
    let slots = 512;
    let mut s = String::new();
    let _ = writeln!(s, "header pkt {{\n    bit<32> key;\n}}\n");
    let _ = writeln!(s, "struct metadata {{");
    for i in 0..stages {
        let _ = writeln!(s, "    bit<32> prec_slot_{i};");
        let _ = writeln!(s, "    bit<32> prec_stored_{i};");
    }
    let _ = writeln!(s, "    bit<32> prec_count;");
    let _ = writeln!(s, "    bit<8> prec_tracked;");
    let _ = writeln!(s, "}}\n");
    for i in 0..stages {
        let _ = writeln!(s, "register<bit<32>>[{slots}] prec_keys_{i};");
        let _ = writeln!(s, "register<bit<32>>[{slots}] prec_counts_{i};");
    }
    let _ = writeln!(s);
    for i in 0..stages {
        let _ = writeln!(
            s,
            "action prec_probe_{i}() {{\n    meta.prec_slot_{i} = hash(hdr.key, {slots});\n    \
             if (prec_keys_{i}[meta.prec_slot_{i}] == 0) {{\n        \
             prec_keys_{i}[meta.prec_slot_{i}] = hdr.key;\n    }}\n    \
             meta.prec_stored_{i} = prec_keys_{i}[meta.prec_slot_{i}];\n}}"
        );
        let _ = writeln!(
            s,
            "action prec_bump_{i}() {{\n    prec_counts_{i}[meta.prec_slot_{i}] = \
             prec_counts_{i}[meta.prec_slot_{i}] + 1;\n    meta.prec_count = \
             prec_counts_{i}[meta.prec_slot_{i}];\n}}"
        );
        let _ = writeln!(s, "action prec_mark_{i}() {{\n    meta.prec_tracked = 1;\n}}");
    }
    let _ = writeln!(s, "\ncontrol Main() {{\n    apply {{");
    for i in 0..stages {
        let _ = writeln!(s, "        prec_probe_{i}();");
    }
    for i in 0..stages {
        let _ = writeln!(
            s,
            "        if (meta.prec_stored_{i} == hdr.key && meta.prec_tracked == 0) {{\n            \
             prec_bump_{i}();\n            prec_mark_{i}();\n        }}"
        );
    }
    let _ = writeln!(s, "    }}\n}}");
    s
}

/// Hand-written ConQuest: three fixed 1024-column snapshots.
pub fn conquest_p4() -> String {
    let snaps = 3;
    let cols = 1024;
    let mut s = String::new();
    let _ = writeln!(s, "header pkt {{\n    bit<32> key;\n    bit<8> epoch;\n}}\n");
    let _ = writeln!(s, "struct metadata {{");
    for j in 0..snaps {
        let _ = writeln!(s, "    bit<32> cq_idx_{j};");
    }
    let _ = writeln!(s, "    bit<32> cq_est;");
    let _ = writeln!(s, "}}\n");
    for j in 0..snaps {
        let _ = writeln!(s, "register<bit<32>>[{cols}] cq_snap_{j};");
    }
    let _ = writeln!(s);
    for j in 0..snaps {
        let _ = writeln!(
            s,
            "action cq_absorb_{j}() {{\n    meta.cq_idx_{j} = hash(hdr.key, {cols});\n    \
             cq_snap_{j}[meta.cq_idx_{j}] = cq_snap_{j}[meta.cq_idx_{j}] + 1;\n}}"
        );
        let _ = writeln!(
            s,
            "action cq_sum_{j}() {{\n    meta.cq_idx_{j} = hash(hdr.key, {cols});\n    \
             meta.cq_est = meta.cq_est + cq_snap_{j}[meta.cq_idx_{j}];\n}}"
        );
    }
    let _ = writeln!(s, "\ncontrol Main() {{\n    apply {{");
    for j in 0..snaps {
        let _ = writeln!(s, "        if (hdr.epoch == {j}) {{ cq_absorb_{j}(); }}");
    }
    for j in 0..snaps {
        let _ = writeln!(s, "        if (hdr.epoch != {j}) {{ cq_sum_{j}(); }}");
    }
    let _ = writeln!(s, "    }}\n}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baselines_are_plain_p4() {
        for (name, src) in [
            ("netcache", netcache_p4()),
            ("sketchlearn", sketchlearn_p4()),
            ("precision", precision_p4()),
            ("conquest", conquest_p4()),
        ] {
            let p = p4all_lang::parse(&src)
                .unwrap_or_else(|e| panic!("{name}: {}\n{src}", e.render(&src)));
            assert!(p.is_plain_p4(), "{name} baseline must contain no symbolic construct");
        }
    }

    #[test]
    fn baselines_are_longer_than_elastic_sources() {
        use p4all_core::loc;
        let elastic_nc = crate::apps::netcache::source(&Default::default());
        assert!(
            loc(&netcache_p4()) > loc(&elastic_nc),
            "unrolled baseline must be longer: {} vs {}",
            loc(&netcache_p4()),
            loc(&elastic_nc)
        );
        let elastic_sl = crate::apps::sketchlearn::source(&Default::default());
        assert!(loc(&sketchlearn_p4()) > loc(&elastic_sl));
    }
}

//! Elastic hierarchical sketch (Figure 1 lists it via SketchLearn): a
//! stack of count rows whose widths shrink level by level — coarse levels
//! aggregate many keys per counter, fine levels resolve individuals. Each
//! level's width is its own size symbolic, with `assume`s tying
//! neighbouring levels (`level(l+1) <= level(l)`), so the whole pyramid
//! stretches coherently.

use super::Fragment;

/// Parameters of one hierarchical sketch.
#[derive(Debug, Clone)]
pub struct HierarchyParams {
    pub prefix: String,
    pub key_expr: String,
    /// Number of levels (a fixed structural constant, like the key width).
    pub levels: usize,
    /// Minimum width of the finest (widest) level.
    pub min_base_cols: u64,
    pub counter_bits: u32,
}

impl Default for HierarchyParams {
    fn default() -> Self {
        HierarchyParams {
            prefix: "hs".into(),
            key_expr: "hdr.key".into(),
            levels: 3,
            min_base_cols: 64,
            counter_bits: 32,
        }
    }
}

impl HierarchyParams {
    pub fn cols_sym(&self, level: usize) -> String {
        format!("{}_cols{level}", self.prefix)
    }

    /// Sum of all level widths — the utility term.
    pub fn utility_term(&self) -> String {
        (0..self.levels).map(|l| self.cols_sym(l)).collect::<Vec<_>>().join(" + ")
    }
}

/// Generate the hierarchical-sketch fragment.
pub fn fragment(p: &HierarchyParams) -> Fragment {
    let pre = &p.prefix;
    let bits = p.counter_bits;
    let key = &p.key_expr;

    let mut symbolics = Vec::new();
    let mut assumes = Vec::new();
    let mut registers = Vec::new();
    let mut metadata = Vec::new();
    let mut actions = Vec::new();
    let mut controls = Vec::new();
    let mut apply = Vec::new();

    for l in 0..p.levels {
        let cols = p.cols_sym(l);
        symbolics.push(cols.clone());
        if l == 0 {
            assumes.push(format!("{cols} >= {}", p.min_base_cols));
        } else {
            // Coarser levels are narrower, but never vanish.
            assumes.push(format!("{cols} >= 2"));
            assumes.push(format!("{cols} <= {}", p.cols_sym(l - 1)));
        }
        metadata.push(format!("bit<32> {pre}_idx{l};"));
        metadata.push(format!("bit<{bits}> {pre}_cnt{l};"));
        registers.push(format!("register<bit<{bits}>>[{cols}] {pre}_lv{l};"));
        actions.push(format!(
            "action {pre}_bump{l}() {{\n    meta.{pre}_idx{l} = hash({key}, {cols});\n    \
             {pre}_lv{l}[meta.{pre}_idx{l}] = {pre}_lv{l}[meta.{pre}_idx{l}] + 1;\n    \
             meta.{pre}_cnt{l} = {pre}_lv{l}[meta.{pre}_idx{l}];\n}}"
        ));
        controls.push(format!(
            "control {pre}_level{l}() {{ apply {{ {pre}_bump{l}(); }} }}"
        ));
        apply.push(format!("{pre}_level{l}.apply();"));
    }

    Fragment { symbolics, assumes, metadata, registers, actions, tables: vec![], controls, apply }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_core::Compiler;
    use p4all_pisa::presets;

    #[test]
    fn fragment_parses() {
        let p = HierarchyParams::default();
        let src = super::super::compose(&[("key", 32)], &p.utility_term(), vec![fragment(&p)]);
        let prog = p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));
        for l in 0..3 {
            assert!(prog.register(&format!("hs_lv{l}")).is_some());
        }
    }

    #[test]
    fn level_widths_are_monotone() {
        let p = HierarchyParams::default();
        let src = super::super::compose(&[("key", 32)], &p.utility_term(), vec![fragment(&p)]);
        let c = Compiler::new(presets::paper_eval(1 << 13)).compile(&src).unwrap();
        let w0 = c.layout.symbol_values["hs_cols0"];
        let w1 = c.layout.symbol_values["hs_cols1"];
        let w2 = c.layout.symbol_values["hs_cols2"];
        assert!(w0 >= w1 && w1 >= w2, "widths must shrink: {w0} {w1} {w2}");
        assert!(w2 >= 2);
        assert!(w0 >= 64);
    }

    #[test]
    fn levels_count_independently() {
        use p4all_sim::Switch;
        let p = HierarchyParams { levels: 2, ..Default::default() };
        let src = super::super::compose(&[("key", 32)], &p.utility_term(), vec![fragment(&p)]);
        let c = Compiler::new(presets::paper_eval(1 << 13)).compile(&src).unwrap();
        let prog = p4all_lang::parse(&src).unwrap();
        let mut sw = Switch::build(&c.concrete, &prog).unwrap();
        for _ in 0..3 {
            sw.begin_packet();
            sw.set_header("key", 11).unwrap();
            sw.run_packet().unwrap();
        }
        assert_eq!(sw.meta("hs_cnt0").unwrap(), 3);
        // The coarse level may alias other keys but for one key it equals
        // the fine level here.
        assert_eq!(sw.meta("hs_cnt1").unwrap(), 3);
    }
}

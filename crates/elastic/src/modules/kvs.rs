//! Elastic key-value store module (the NetCache value store), plus a Rust
//! reference implementation.
//!
//! Layout: an elastic array of value-register slices; an exact-match table
//! maps cached keys to `(slice, index)` action data; per-slice guarded read
//! actions serve the value into metadata. Slices stretch across stages, so
//! `kv_slices * kv_cols` — the cache capacity — is the elastic quantity
//! NetCache's utility maximizes.

use super::Fragment;

/// Parameters of one key-value store instantiation.
#[derive(Debug, Clone)]
pub struct KvsParams {
    pub prefix: String,
    pub key_expr: String,
    /// Value width in bits (NetCache values are large relative to CMS
    /// counters; the paper's Figure 12 notes this asymmetry).
    pub value_bits: u32,
    pub min_slices: u64,
    pub max_slices: Option<u64>,
    pub min_cols: u64,
    pub max_cols: Option<u64>,
    /// Exact-match table capacity (entries).
    pub table_size: u64,
}

impl Default for KvsParams {
    fn default() -> Self {
        KvsParams {
            prefix: "kv".into(),
            key_expr: "hdr.key".into(),
            value_bits: 64,
            min_slices: 1,
            max_slices: None,
            min_cols: 16,
            max_cols: None,
            table_size: 65536,
        }
    }
}

impl KvsParams {
    pub fn slices_sym(&self) -> String {
        format!("{}_slices", self.prefix)
    }

    pub fn cols_sym(&self) -> String {
        format!("{}_cols", self.prefix)
    }

    /// `slices * cols` — the store's item capacity (the paper's
    /// `kv_items`).
    pub fn items_term(&self) -> String {
        format!("({} * {})", self.slices_sym(), self.cols_sym())
    }

    /// Register holding the values.
    pub fn register(&self) -> String {
        format!("{}s", self.prefix)
    }

    pub fn table(&self) -> String {
        format!("{}_cache", self.prefix)
    }

    pub fn hit_action(&self) -> String {
        format!("{}_hit_act", self.prefix)
    }

    pub fn hit_meta(&self) -> String {
        format!("{}_hit", self.prefix)
    }

    pub fn value_meta(&self) -> String {
        format!("{}_val", self.prefix)
    }

    pub fn slice_meta(&self) -> String {
        format!("{}_slice", self.prefix)
    }

    pub fn idx_meta(&self) -> String {
        format!("{}_idx", self.prefix)
    }
}

/// Generate the key-value store fragment.
pub fn fragment(p: &KvsParams) -> Fragment {
    let pre = &p.prefix;
    let slices = p.slices_sym();
    let cols = p.cols_sym();
    let reg = p.register();
    let key = &p.key_expr;
    let vbits = p.value_bits;

    let mut assumes = vec![format!("{slices} >= {}", p.min_slices), format!("{cols} >= {}", p.min_cols)];
    if let Some(ms) = p.max_slices {
        assumes.push(format!("{slices} <= {ms}"));
    }
    if let Some(mc) = p.max_cols {
        assumes.push(format!("{cols} <= {mc}"));
    }

    Fragment {
        symbolics: vec![slices.clone(), cols.clone()],
        assumes,
        metadata: vec![
            format!("bit<8> {pre}_hit;"),
            format!("bit<32> {pre}_slice;"),
            format!("bit<32> {pre}_idx;"),
            format!("bit<{vbits}> {pre}_val;"),
        ],
        registers: vec![format!("register<bit<{vbits}>>[{cols}][{slices}] {reg};")],
        actions: vec![
            format!("action {pre}_hit_act() {{\n    meta.{pre}_hit = 1;\n}}"),
            format!("action {pre}_miss_act() {{\n    meta.{pre}_hit = 0;\n}}"),
            format!(
                "action {pre}_read()[int j] {{\n    meta.{pre}_val = {reg}[j][meta.{pre}_idx];\n}}"
            ),
        ],
        tables: vec![format!(
            "table {} {{\n    key = {{ {key}; }}\n    actions = {{ {pre}_hit_act; \
             {pre}_miss_act; }}\n    size = {};\n    default_action = {pre}_miss_act;\n}}",
            p.table(),
            p.table_size
        )],
        controls: vec![
            format!("control {pre}_lookup() {{ apply {{ {}.apply(); }} }}", p.table()),
            format!(
                "control {pre}_serve() {{\n    apply {{\n        for (j < {slices}) {{\n            \
                 if (meta.{pre}_hit == 1 && meta.{pre}_slice == j) {{ {pre}_read()[j]; }}\n        \
                 }}\n    }}\n}}"
            ),
        ],
        apply: vec![format!("{pre}_lookup.apply();"), format!("{pre}_serve.apply();")],
    }
}

// ------------------------------------------------------------- reference

/// Reference fixed-capacity key-value cache with the same slot structure
/// (slices x columns) as the data-plane store.
#[derive(Debug, Clone)]
pub struct KvStore {
    slices: usize,
    cols: usize,
    values: Vec<Option<(u64, u64)>>, // (key, value) per slot
    index: std::collections::HashMap<u64, usize>,
}

impl KvStore {
    pub fn new(slices: usize, cols: usize) -> Self {
        KvStore {
            slices,
            cols,
            values: vec![None; slices * cols],
            index: std::collections::HashMap::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slices * self.cols
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Insert into the first free slot; returns `(slice, col)` or `None`
    /// when full.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<(usize, usize)> {
        if let Some(&slot) = self.index.get(&key) {
            self.values[slot] = Some((key, value));
            return Some((slot / self.cols, slot % self.cols));
        }
        let slot = self.values.iter().position(|v| v.is_none())?;
        self.values[slot] = Some((key, value));
        self.index.insert(key, slot);
        Some((slot / self.cols, slot % self.cols))
    }

    pub fn get(&self, key: u64) -> Option<u64> {
        self.index.get(&key).and_then(|&s| self.values[s]).map(|(_, v)| v)
    }

    pub fn remove(&mut self, key: u64) -> bool {
        if let Some(slot) = self.index.remove(&key) {
            self.values[slot] = None;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_parses() {
        let p = KvsParams::default();
        let src = super::super::compose(&[("key", 32)], &p.items_term(), vec![fragment(&p)]);
        let prog = p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));
        assert!(prog.table("kv_cache").is_some());
        assert!(prog.register("kvs").is_some());
    }

    #[test]
    fn reference_round_trip() {
        let mut kv = KvStore::new(2, 4);
        assert_eq!(kv.capacity(), 8);
        let slot = kv.insert(10, 100).unwrap();
        assert!(slot.0 < 2 && slot.1 < 4);
        assert_eq!(kv.get(10), Some(100));
        assert_eq!(kv.get(11), None);
        assert!(kv.remove(10));
        assert_eq!(kv.get(10), None);
        assert!(!kv.remove(10));
    }

    #[test]
    fn reference_capacity_bound() {
        let mut kv = KvStore::new(1, 3);
        for k in 0..3 {
            assert!(kv.insert(k, k).is_some());
        }
        assert!(kv.insert(99, 99).is_none(), "store must reject when full");
        assert_eq!(kv.len(), 3);
        // Updating an existing key works even when full.
        assert!(kv.insert(1, 111).is_some());
        assert_eq!(kv.get(1), Some(111));
    }
}

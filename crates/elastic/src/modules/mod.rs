//! Reusable elastic modules.
//!
//! Each module is a [`Fragment`]: named sections of P4All source that an
//! application composes with other fragments and a utility function. This
//! is the paper's modular-reuse story — a count-min sketch written once is
//! dropped into NetCache, SketchLearn, and ConQuest, stretching differently
//! in each, because the compiler (not the module author) picks its size.

pub mod bloom;
pub mod cms;
pub mod hashtable;
pub mod hierarchy;
pub mod idtable;
pub mod kvs;

/// Sections of P4All source contributed by one module.
#[derive(Debug, Clone, Default)]
pub struct Fragment {
    /// Symbolic value names (`symbolic int <name>;` each).
    pub symbolics: Vec<String>,
    /// Assume expressions (without the keyword/semicolon).
    pub assumes: Vec<String>,
    /// Lines inside `struct metadata { ... }`.
    pub metadata: Vec<String>,
    /// Full register declarations.
    pub registers: Vec<String>,
    /// Full action declarations.
    pub actions: Vec<String>,
    /// Full table declarations.
    pub tables: Vec<String>,
    /// Full control declarations (leaf controls).
    pub controls: Vec<String>,
    /// `x.apply();` lines for the program's `Main`, in order.
    pub apply: Vec<String>,
}

impl Fragment {
    /// Append another fragment's sections after this one's.
    pub fn merge(mut self, other: Fragment) -> Fragment {
        self.symbolics.extend(other.symbolics);
        self.assumes.extend(other.assumes);
        self.metadata.extend(other.metadata);
        self.registers.extend(other.registers);
        self.actions.extend(other.actions);
        self.tables.extend(other.tables);
        self.controls.extend(other.controls);
        self.apply.extend(other.apply);
        self
    }
}

/// Compose fragments into a complete P4All program.
///
/// `header_fields`: `(name, bits)` of the single flat header. `utility`:
/// the `optimize` expression (empty = none, compiler default applies).
pub fn compose(
    header_fields: &[(&str, u32)],
    utility: &str,
    fragments: Vec<Fragment>,
) -> String {
    compose_with_apply(header_fields, utility, fragments, None)
}

/// Like [`compose`], but with an explicit `Main` apply order (applications
/// often interleave module controls, e.g. NetCache looks up the cache
/// before the sketch counts and serves values after).
pub fn compose_with_apply(
    header_fields: &[(&str, u32)],
    utility: &str,
    fragments: Vec<Fragment>,
    apply_override: Option<Vec<String>>,
) -> String {
    let mut f = fragments.into_iter().fold(Fragment::default(), Fragment::merge);
    if let Some(apply) = apply_override {
        f.apply = apply;
    }
    let mut out = String::new();
    for s in &f.symbolics {
        out.push_str(&format!("symbolic int {s};\n"));
    }
    for a in &f.assumes {
        out.push_str(&format!("assume {a};\n"));
    }
    if !utility.is_empty() {
        out.push_str(&format!("optimize {utility};\n"));
    }
    out.push_str("\nheader pkt {\n");
    for (name, bits) in header_fields {
        out.push_str(&format!("    bit<{bits}> {name};\n"));
    }
    out.push_str("}\n\nstruct metadata {\n");
    for m in &f.metadata {
        out.push_str(&format!("    {m}\n"));
    }
    out.push_str("}\n\n");
    for r in &f.registers {
        out.push_str(r);
        out.push('\n');
    }
    out.push('\n');
    for a in &f.actions {
        out.push_str(a);
        out.push('\n');
    }
    for t in &f.tables {
        out.push_str(t);
        out.push('\n');
    }
    for c in &f.controls {
        out.push_str(c);
        out.push('\n');
    }
    out.push_str("control Main() {\n    apply {\n");
    for a in &f.apply {
        out.push_str(&format!("        {a}\n"));
    }
    out.push_str("    }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_produces_parseable_program() {
        let frag = Fragment {
            symbolics: vec!["n".into()],
            assumes: vec!["n >= 1 && n <= 4".into()],
            metadata: vec!["bit<32>[n] slot;".into(), "bit<32> out;".into()],
            registers: vec!["register<bit<32>>[64][n] tallies;".into()],
            actions: vec![
                "action bump()[int i] {\n    meta.slot[i] = hash(hdr.key, 64);\n    \
                 tallies[i][meta.slot[i]] = tallies[i][meta.slot[i]] + 1;\n}"
                    .into(),
            ],
            tables: vec![],
            controls: vec![
                "control counting() { apply { for (i < n) { bump()[i]; } } }".into(),
            ],
            apply: vec!["counting.apply();".into()],
        };
        let src = compose(&[("key", 32)], "n", vec![frag]);
        let p = p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}", e.render(&src)));
        assert_eq!(p.symbolics.len(), 1);
        assert_eq!(p.entry_control().unwrap().name, "Main");
    }

    #[test]
    fn merge_preserves_order() {
        let a = Fragment { apply: vec!["first.apply();".into()], ..Default::default() };
        let b = Fragment { apply: vec!["second.apply();".into()], ..Default::default() };
        let m = a.merge(b);
        assert_eq!(m.apply, vec!["first.apply();".to_string(), "second.apply();".to_string()]);
    }
}

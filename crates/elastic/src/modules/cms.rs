//! Elastic count-min sketch module (the paper's running example), plus a
//! Rust reference implementation used as ground truth in tests.

use super::Fragment;

/// Parameters of one CMS instantiation.
#[derive(Debug, Clone)]
pub struct CmsParams {
    /// Name prefix for all generated identifiers (allows several CMS
    /// instances per program).
    pub prefix: String,
    /// Expression hashed as the key (e.g. `hdr.key`).
    pub key_expr: String,
    /// Bounds fed into `assume` (the paper: experience says more than four
    /// hash functions gives diminishing returns).
    pub min_rows: u64,
    pub max_rows: u64,
    pub min_cols: u64,
    /// Optional cap on columns.
    pub max_cols: Option<u64>,
    /// Counter width in bits.
    pub counter_bits: u32,
}

impl Default for CmsParams {
    fn default() -> Self {
        CmsParams {
            prefix: "cms".into(),
            key_expr: "hdr.key".into(),
            min_rows: 1,
            max_rows: 4,
            min_cols: 16,
            max_cols: None,
            counter_bits: 32,
        }
    }
}

impl CmsParams {
    /// Symbolic name of the row count.
    pub fn rows_sym(&self) -> String {
        format!("{}_rows", self.prefix)
    }

    /// Symbolic name of the column count.
    pub fn cols_sym(&self) -> String {
        format!("{}_cols", self.prefix)
    }

    /// Metadata field carrying the minimum estimate.
    pub fn min_meta(&self) -> String {
        format!("{}_min", self.prefix)
    }

    /// The `rows * cols` utility term for this instance.
    pub fn utility_term(&self) -> String {
        format!("({} * {})", self.rows_sym(), self.cols_sym())
    }
}

/// Generate the CMS fragment: per-row hash+increment, then a guarded
/// minimum scan leaving the estimate in `<prefix>_min`.
pub fn fragment(p: &CmsParams) -> Fragment {
    let pre = &p.prefix;
    let rows = p.rows_sym();
    let cols = p.cols_sym();
    let key = &p.key_expr;
    let bits = p.counter_bits;

    let mut assumes = vec![
        format!("{rows} >= {} && {rows} <= {}", p.min_rows, p.max_rows),
        format!("{cols} >= {}", p.min_cols),
    ];
    if let Some(mc) = p.max_cols {
        assumes.push(format!("{cols} <= {mc}"));
    }

    Fragment {
        symbolics: vec![rows.clone(), cols.clone()],
        assumes,
        metadata: vec![
            format!("bit<32>[{rows}] {pre}_index;"),
            format!("bit<{bits}>[{rows}] {pre}_count;"),
            format!("bit<{bits}> {pre}_min;"),
        ],
        registers: vec![format!("register<bit<{bits}>>[{cols}][{rows}] {pre};")],
        actions: vec![
            format!(
                "action {pre}_incr()[int i] {{\n    meta.{pre}_index[i] = hash({key}, {cols});\n    \
                 {pre}[i][meta.{pre}_index[i]] = {pre}[i][meta.{pre}_index[i]] + 1;\n    \
                 meta.{pre}_count[i] = {pre}[i][meta.{pre}_index[i]];\n}}"
            ),
            format!(
                "action {pre}_set_min()[int i] {{\n    meta.{pre}_min = meta.{pre}_count[i];\n}}"
            ),
        ],
        tables: vec![],
        controls: vec![
            format!(
                "control {pre}_sketch() {{ apply {{ for (i < {rows}) {{ {pre}_incr()[i]; }} }} }}"
            ),
            format!(
                "control {pre}_minimum() {{\n    apply {{\n        for (i < {rows}) {{\n            \
                 if (meta.{pre}_count[i] < meta.{pre}_min || meta.{pre}_min == 0) {{ \
                 {pre}_set_min()[i]; }}\n        }}\n    }}\n}}"
            ),
        ],
        apply: vec![format!("{pre}_sketch.apply();"), format!("{pre}_minimum.apply();")],
    }
}

// ------------------------------------------------------------- reference

/// Reference count-min sketch (ground truth for simulator equivalence and
/// accuracy experiments).
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    rows: usize,
    cols: usize,
    counts: Vec<u64>,
}

impl CountMinSketch {
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0);
        CountMinSketch { rows, cols, counts: vec![0; rows * cols] }
    }

    fn index(&self, row: usize, key: u64) -> usize {
        row * self.cols + (hash_row(row, key) % self.cols as u64) as usize
    }

    /// Record one occurrence; returns the updated minimum estimate.
    pub fn insert(&mut self, key: u64) -> u64 {
        let mut min = u64::MAX;
        for r in 0..self.rows {
            let i = self.index(r, key);
            self.counts[i] += 1;
            min = min.min(self.counts[i]);
        }
        min
    }

    /// Current estimate (no update).
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.rows).map(|r| self.counts[self.index(r, key)]).min().unwrap_or(0)
    }

    /// Zero all counters.
    pub fn clear(&mut self) {
        self.counts.fill(0);
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }
}

fn hash_row(row: usize, key: u64) -> u64 {
    let mut z = (row as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ key;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_compiles() {
        let src = super::super::compose(
            &[("key", 32)],
            &CmsParams::default().utility_term(),
            vec![fragment(&CmsParams::default())],
        );
        let p = p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}", e.render(&src)));
        assert!(p.symbolic("cms_rows").is_some());
        assert!(p.register("cms").is_some());
    }

    #[test]
    fn two_instances_coexist() {
        let a = fragment(&CmsParams { prefix: "fast".into(), ..Default::default() });
        let b = fragment(&CmsParams { prefix: "slow".into(), ..Default::default() });
        let src = super::super::compose(&[("key", 32)], "fast_rows + slow_rows", vec![a, b]);
        let p = p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}", e.render(&src)));
        assert!(p.register("fast").is_some());
        assert!(p.register("slow").is_some());
    }

    #[test]
    fn reference_never_underestimates() {
        let mut cms = CountMinSketch::new(3, 64);
        let mut truth = std::collections::HashMap::new();
        for i in 0..500u64 {
            let key = i % 40;
            cms.insert(key);
            *truth.entry(key).or_insert(0u64) += 1;
        }
        for (key, count) in truth {
            assert!(cms.estimate(key) >= count);
        }
    }

    #[test]
    fn reference_exact_without_collisions() {
        let mut cms = CountMinSketch::new(4, 4096);
        for _ in 0..10 {
            cms.insert(7);
        }
        // With 1 key there are no collisions at all.
        assert_eq!(cms.estimate(7), 10);
        assert_eq!(cms.estimate(8), 0);
    }

    #[test]
    fn more_columns_reduce_error() {
        let keys: Vec<u64> = (0..200).collect();
        let err = |cols: usize| -> u64 {
            let mut cms = CountMinSketch::new(2, cols);
            for &k in &keys {
                cms.insert(k);
            }
            keys.iter().map(|&k| cms.estimate(k) - 1).sum()
        };
        assert!(err(1024) < err(32), "wider sketch must reduce total overestimate");
    }

    #[test]
    fn clear_resets() {
        let mut cms = CountMinSketch::new(2, 32);
        cms.insert(1);
        cms.clear();
        assert_eq!(cms.estimate(1), 0);
    }
}

//! Elastic ID-indexed table (Figure 1 lists it via Blink): per-ID state
//! registers indexed directly by a small identifier carried in the packet
//! (e.g. a prefix or flow-group ID), partitioned into an elastic number of
//! banks so the table stretches across stages.
//!
//! The bank for an ID is `id / bank_cells` — computed with integer
//! division against the *elastic* bank size, which the dialect cannot
//! express in-line; instead each bank's action guards on its own ID range
//! via the bank-local index metadata written by the harness/controller
//! (`meta.<prefix>_bank`, `meta.<prefix>_idx`). This mirrors Blink, where
//! the controller assigns prefixes to slots.

use super::Fragment;

/// Parameters of one ID-indexed table.
#[derive(Debug, Clone)]
pub struct IdTableParams {
    pub prefix: String,
    /// State width per ID, in bits.
    pub state_bits: u32,
    pub min_banks: u64,
    pub max_banks: Option<u64>,
    pub min_cells: u64,
    pub max_cells: Option<u64>,
}

impl Default for IdTableParams {
    fn default() -> Self {
        IdTableParams {
            prefix: "idt".into(),
            state_bits: 32,
            min_banks: 1,
            max_banks: None,
            min_cells: 16,
            max_cells: None,
        }
    }
}

impl IdTableParams {
    pub fn banks_sym(&self) -> String {
        format!("{}_banks", self.prefix)
    }

    pub fn cells_sym(&self) -> String {
        format!("{}_cells", self.prefix)
    }

    /// Total tracked IDs.
    pub fn capacity_term(&self) -> String {
        format!("({} * {})", self.banks_sym(), self.cells_sym())
    }
}

/// Generate the ID-table fragment: a guarded update action per bank that
/// increments the addressed cell and reflects it into metadata.
pub fn fragment(p: &IdTableParams) -> Fragment {
    let pre = &p.prefix;
    let banks = p.banks_sym();
    let cells = p.cells_sym();
    let bits = p.state_bits;

    let mut assumes = vec![
        format!("{banks} >= {}", p.min_banks),
        format!("{cells} >= {}", p.min_cells),
    ];
    if let Some(mb) = p.max_banks {
        assumes.push(format!("{banks} <= {mb}"));
    }
    if let Some(mc) = p.max_cells {
        assumes.push(format!("{cells} <= {mc}"));
    }

    Fragment {
        symbolics: vec![banks.clone(), cells.clone()],
        assumes,
        metadata: vec![
            format!("bit<32> {pre}_bank;"),
            format!("bit<32> {pre}_idx;"),
            format!("bit<{bits}> {pre}_state;"),
        ],
        registers: vec![format!("register<bit<{bits}>>[{cells}][{banks}] {pre};")],
        actions: vec![format!(
            "action {pre}_touch()[int b] {{\n    {pre}[b][meta.{pre}_idx] = \
             {pre}[b][meta.{pre}_idx] + 1;\n    meta.{pre}_state = {pre}[b][meta.{pre}_idx];\n}}"
        )],
        tables: vec![],
        controls: vec![format!(
            "control {pre}_update() {{\n    apply {{\n        for (b < {banks}) {{\n            \
             if (meta.{pre}_bank == b) {{ {pre}_touch()[b]; }}\n        }}\n    }}\n}}"
        )],
        apply: vec![format!("{pre}_update.apply();")],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_core::Compiler;
    use p4all_pisa::presets;
    use p4all_sim::Switch;

    fn program() -> String {
        let p = IdTableParams { max_banks: Some(3), ..Default::default() };
        let mut frag = fragment(&p);
        // The harness computes bank/idx from the header ID (the control
        // plane's job in Blink); here a front action splits a 6-bit ID into
        // bank = id / 16, idx = id - bank * 16 using data-plane division.
        frag.actions.push(
            "action idt_route() {\n    meta.idt_bank = hdr.id / 16;\n    \
             meta.idt_idx = hdr.id - (hdr.id / 16) * 16;\n}"
                .into(),
        );
        frag.controls.push("control idt_front() { apply { idt_route(); } }".into());
        frag.apply.insert(0, "idt_front.apply();".into());
        super::super::compose(&[("id", 8)], &p.capacity_term(), vec![frag])
    }

    #[test]
    fn fragment_parses_and_compiles() {
        let src = program();
        let c = Compiler::new(presets::paper_eval(1 << 13))
            .compile(&src)
            .unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert!(c.layout.symbol_values["idt_banks"] >= 1);
        assert!(c.layout.symbol_values["idt_cells"] >= 16);
    }

    #[test]
    fn per_id_state_is_isolated_in_sim() {
        let src = program();
        let c = Compiler::new(presets::paper_eval(1 << 13)).compile(&src).unwrap();
        let banks = c.layout.symbol_values["idt_banks"];
        let program_ast = p4all_lang::parse(&src).unwrap();
        let mut sw = Switch::build(&c.concrete, &program_ast).unwrap();
        let max_id = (banks * 16).min(64) as u64;
        // Touch id 3 twice, id 17 once (different banks when banks >= 2).
        let mut touch = |id: u64| -> u64 {
            sw.begin_packet();
            sw.set_header("id", id).unwrap();
            sw.run_packet().unwrap();
            sw.meta("idt_state").unwrap()
        };
        assert_eq!(touch(3), 1);
        assert_eq!(touch(3), 2);
        if max_id > 17 {
            assert_eq!(touch(17), 1, "id 17 must have independent state");
        }
        assert_eq!(touch(3), 3);
    }
}

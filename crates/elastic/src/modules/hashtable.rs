//! Elastic multi-stage hash table module (the PRECISION/HashPipe family),
//! plus a Rust reference implementation.
//!
//! One table stage per elastic iteration: each stage hashes the key into a
//! slot, records the key fingerprint in a key register and bumps a count
//! register when the fingerprint matches; the first empty slot adopts the
//! key. More stages ⇒ fewer collisions evict tracked flows — exactly the
//! elasticity PRECISION wants.
//!
//! (Stateful-action atomicity: each register is touched by its own action,
//! so the per-stage work is split into `probe` — fingerprint check/adopt —
//! and `bump` — counter update.)

use super::Fragment;

/// Parameters of one multi-stage hash table.
#[derive(Debug, Clone)]
pub struct HashTableParams {
    pub prefix: String,
    pub key_expr: String,
    pub min_stages: u64,
    pub max_stages: u64,
    pub min_slots: u64,
    pub max_slots: Option<u64>,
    pub counter_bits: u32,
}

impl Default for HashTableParams {
    fn default() -> Self {
        HashTableParams {
            prefix: "ht".into(),
            key_expr: "hdr.key".into(),
            min_stages: 1,
            max_stages: 4,
            min_slots: 16,
            max_slots: None,
            counter_bits: 32,
        }
    }
}

impl HashTableParams {
    pub fn stages_sym(&self) -> String {
        format!("{}_stages", self.prefix)
    }

    pub fn slots_sym(&self) -> String {
        format!("{}_slots", self.prefix)
    }

    pub fn utility_term(&self) -> String {
        format!("({} * {})", self.stages_sym(), self.slots_sym())
    }

    /// Metadata flag: 1 once the key found (or adopted) a slot.
    pub fn tracked_meta(&self) -> String {
        format!("{}_tracked", self.prefix)
    }
}

/// Generate the hash-table fragment.
pub fn fragment(p: &HashTableParams) -> Fragment {
    let pre = &p.prefix;
    let stages = p.stages_sym();
    let slots = p.slots_sym();
    let key = &p.key_expr;
    let cbits = p.counter_bits;

    let mut assumes = vec![
        format!("{stages} >= {} && {stages} <= {}", p.min_stages, p.max_stages),
        format!("{slots} >= {}", p.min_slots),
    ];
    if let Some(ms) = p.max_slots {
        assumes.push(format!("{slots} <= {ms}"));
    }

    Fragment {
        symbolics: vec![stages.clone(), slots.clone()],
        assumes,
        metadata: vec![
            format!("bit<32>[{stages}] {pre}_slot;"),
            format!("bit<32>[{stages}] {pre}_stored;"),
            format!("bit<{cbits}> {pre}_count;"),
            format!("bit<8> {pre}_tracked;"),
        ],
        registers: vec![
            format!("register<bit<32>>[{slots}][{stages}] {pre}_keys;"),
            format!("register<bit<{cbits}>>[{slots}][{stages}] {pre}_counts;"),
        ],
        actions: vec![
            // Probe: adopt-if-empty, and report the stored fingerprint.
            format!(
                "action {pre}_probe()[int i] {{\n    meta.{pre}_slot[i] = hash({key}, {slots});\n    \
                 if ({pre}_keys[i][meta.{pre}_slot[i]] == 0) {{\n        \
                 {pre}_keys[i][meta.{pre}_slot[i]] = {key};\n    }}\n    \
                 meta.{pre}_stored[i] = {pre}_keys[i][meta.{pre}_slot[i]];\n}}"
            ),
            // Bump: count when this stage tracks the key.
            format!(
                "action {pre}_bump()[int i] {{\n    \
                 {pre}_counts[i][meta.{pre}_slot[i]] = {pre}_counts[i][meta.{pre}_slot[i]] + 1;\n    \
                 meta.{pre}_count = {pre}_counts[i][meta.{pre}_slot[i]];\n}}"
            ),
            format!("action {pre}_mark()[int i] {{\n    meta.{pre}_tracked = 1;\n}}"),
        ],
        tables: vec![],
        controls: vec![
            format!(
                "control {pre}_probe_all() {{ apply {{ for (i < {stages}) {{ {pre}_probe()[i]; }} }} }}"
            ),
            format!(
                "control {pre}_update() {{\n    apply {{\n        for (i < {stages}) {{\n            \
                 if (meta.{pre}_stored[i] == {key} && meta.{pre}_tracked == 0) {{\n                \
                 {pre}_bump()[i];\n                {pre}_mark()[i];\n            }}\n        \
                 }}\n    }}\n}}"
            ),
        ],
        apply: vec![format!("{pre}_probe_all.apply();"), format!("{pre}_update.apply();")],
    }
}

// ------------------------------------------------------------- reference

/// Reference multi-stage hash table with the same adopt-if-empty policy.
#[derive(Debug, Clone)]
pub struct MultiStageHashTable {
    stages: usize,
    slots: usize,
    keys: Vec<u64>,
    counts: Vec<u64>,
}

impl MultiStageHashTable {
    pub fn new(stages: usize, slots: usize) -> Self {
        MultiStageHashTable {
            stages,
            slots,
            keys: vec![0; stages * slots],
            counts: vec![0; stages * slots],
        }
    }

    fn slot(&self, stage: usize, key: u64) -> usize {
        let mut z = (stage as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ key;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        stage * self.slots + ((z ^ (z >> 31)) % self.slots as u64) as usize
    }

    /// Process one packet of `key` (nonzero). Returns `true` if some stage
    /// tracked it.
    pub fn observe(&mut self, key: u64) -> bool {
        assert_ne!(key, 0, "key 0 is the empty marker");
        for s in 0..self.stages {
            let i = self.slot(s, key);
            if self.keys[i] == 0 {
                self.keys[i] = key;
            }
            if self.keys[i] == key {
                self.counts[i] += 1;
                return true;
            }
        }
        false
    }

    /// Count recorded for `key` (0 if untracked).
    pub fn count(&self, key: u64) -> u64 {
        for s in 0..self.stages {
            let i = self.slot(s, key);
            if self.keys[i] == key {
                return self.counts[i];
            }
        }
        0
    }

    /// All tracked `(key, count)` pairs.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        self.keys
            .iter()
            .zip(&self.counts)
            .filter(|(&k, _)| k != 0)
            .map(|(&k, &c)| (k, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_parses() {
        let p = HashTableParams::default();
        let src = super::super::compose(&[("key", 32)], &p.utility_term(), vec![fragment(&p)]);
        let prog = p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));
        assert!(prog.register("ht_keys").is_some());
        assert!(prog.register("ht_counts").is_some());
    }

    #[test]
    fn reference_tracks_and_counts() {
        let mut ht = MultiStageHashTable::new(2, 64);
        for _ in 0..5 {
            assert!(ht.observe(42));
        }
        assert_eq!(ht.count(42), 5);
        assert_eq!(ht.count(43), 0);
    }

    #[test]
    fn reference_more_stages_track_more_keys() {
        let keys: Vec<u64> = (1..=200).collect();
        let tracked = |stages: usize| -> usize {
            let mut ht = MultiStageHashTable::new(stages, 64);
            for &k in &keys {
                ht.observe(k);
            }
            keys.iter().filter(|&&k| ht.count(k) > 0).count()
        };
        assert!(tracked(4) > tracked(1), "more stages must track more keys");
    }

    #[test]
    fn entries_lists_tracked_keys() {
        let mut ht = MultiStageHashTable::new(2, 16);
        ht.observe(7);
        ht.observe(7);
        ht.observe(9);
        let mut es = ht.entries();
        es.sort_unstable();
        assert_eq!(es, vec![(7, 2), (9, 1)]);
    }
}

//! Elastic Bloom filter module, plus a Rust reference implementation.
//!
//! The data-plane encoding uses one 1-bit register row per hash function
//! (an elastic array of rows, like the CMS): insertion sets one bit per
//! row; membership is the AND of the probed bits, accumulated in a
//! metadata flag.

use super::Fragment;

/// Parameters of one Bloom filter instantiation.
#[derive(Debug, Clone)]
pub struct BloomParams {
    pub prefix: String,
    pub key_expr: String,
    /// Bounds on the number of hash functions.
    pub min_hashes: u64,
    pub max_hashes: u64,
    /// Minimum bits per row.
    pub min_bits: u64,
    pub max_bits: Option<u64>,
}

impl Default for BloomParams {
    fn default() -> Self {
        BloomParams {
            prefix: "bf".into(),
            key_expr: "hdr.key".into(),
            min_hashes: 1,
            max_hashes: 4,
            min_bits: 64,
            max_bits: None,
        }
    }
}

impl BloomParams {
    pub fn hashes_sym(&self) -> String {
        format!("{}_hashes", self.prefix)
    }

    pub fn bits_sym(&self) -> String {
        format!("{}_bits", self.prefix)
    }

    /// Metadata flag: 1 after the query controls if the key may be present.
    pub fn member_meta(&self) -> String {
        format!("{}_member", self.prefix)
    }

    pub fn utility_term(&self) -> String {
        format!("({} * {})", self.hashes_sym(), self.bits_sym())
    }
}

/// Generate the Bloom filter fragment: a `<prefix>_insert` control that
/// sets bits, and a `<prefix>_query` control that ANDs probed bits into
/// `<prefix>_member`. A header flag `hdr.<prefix>_op` (set by the harness)
/// selects insert (1) vs query (0).
pub fn fragment(p: &BloomParams) -> Fragment {
    let pre = &p.prefix;
    let h = p.hashes_sym();
    let b = p.bits_sym();
    let key = &p.key_expr;

    let mut assumes = vec![
        format!("{h} >= {} && {h} <= {}", p.min_hashes, p.max_hashes),
        format!("{b} >= {}", p.min_bits),
    ];
    if let Some(mb) = p.max_bits {
        assumes.push(format!("{b} <= {mb}"));
    }

    Fragment {
        symbolics: vec![h.clone(), b.clone()],
        assumes,
        metadata: vec![
            format!("bit<32>[{h}] {pre}_slot;"),
            format!("bit<8>[{h}] {pre}_probe;"),
            format!("bit<8> {pre}_member;"),
        ],
        registers: vec![format!("register<bit<8>>[{b}][{h}] {pre};")],
        actions: vec![
            format!(
                "action {pre}_set()[int i] {{\n    meta.{pre}_slot[i] = hash({key}, {b});\n    \
                 {pre}[i][meta.{pre}_slot[i]] = 1;\n}}"
            ),
            format!(
                "action {pre}_get()[int i] {{\n    meta.{pre}_slot[i] = hash({key}, {b});\n    \
                 meta.{pre}_probe[i] = {pre}[i][meta.{pre}_slot[i]];\n}}"
            ),
            format!("action {pre}_init() {{\n    meta.{pre}_member = 1;\n}}"),
            format!("action {pre}_clear()[int i] {{\n    meta.{pre}_member = 0;\n}}"),
        ],
        tables: vec![],
        controls: vec![
            format!(
                "control {pre}_insert() {{\n    apply {{\n        if (hdr.{pre}_op == 1) {{\n            \
                 for (i < {h}) {{ {pre}_set()[i]; }}\n        }}\n    }}\n}}"
            ),
            format!(
                "control {pre}_query() {{\n    apply {{\n        if (hdr.{pre}_op == 0) {{\n            \
                 {pre}_init();\n            for (i < {h}) {{ {pre}_get()[i]; }}\n        }}\n    }}\n}}"
            ),
            format!(
                "control {pre}_decide() {{\n    apply {{\n        if (hdr.{pre}_op == 0) {{\n            \
                 for (i < {h}) {{\n                if (meta.{pre}_probe[i] == 0) {{ \
                 {pre}_clear()[i]; }}\n            }}\n        }}\n    }}\n}}"
            ),
        ],
        apply: vec![
            format!("{pre}_insert.apply();"),
            format!("{pre}_query.apply();"),
            format!("{pre}_decide.apply();"),
        ],
    }
}

/// Header fields this module expects (merge into the app's header list).
pub fn header_fields(p: &BloomParams) -> Vec<(String, u32)> {
    vec![(format!("{}_op", p.prefix), 8)]
}

// ------------------------------------------------------------- reference

/// Reference Bloom filter.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    hashes: usize,
    bits_per_row: usize,
    rows: Vec<Vec<bool>>,
}

impl BloomFilter {
    pub fn new(hashes: usize, bits_per_row: usize) -> Self {
        assert!(hashes > 0 && bits_per_row > 0);
        BloomFilter { hashes, bits_per_row, rows: vec![vec![false; bits_per_row]; hashes] }
    }

    fn slot(&self, row: usize, key: u64) -> usize {
        let mut z = (row as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ key;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z ^ (z >> 31)) % self.bits_per_row as u64) as usize
    }

    pub fn insert(&mut self, key: u64) {
        for r in 0..self.hashes {
            let s = self.slot(r, key);
            self.rows[r][s] = true;
        }
    }

    /// May return false positives, never false negatives.
    pub fn contains(&self, key: u64) -> bool {
        (0..self.hashes).all(|r| self.rows[r][self.slot(r, key)])
    }

    /// Fraction of set bits (diagnostic for false-positive estimation).
    pub fn fill_ratio(&self) -> f64 {
        let set: usize = self.rows.iter().flatten().filter(|&&b| b).count();
        set as f64 / (self.hashes * self.bits_per_row) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_parses() {
        let p = BloomParams::default();
        let mut hdr: Vec<(String, u32)> = vec![("key".into(), 32)];
        hdr.extend(header_fields(&p));
        let hdr_refs: Vec<(&str, u32)> = hdr.iter().map(|(n, b)| (n.as_str(), *b)).collect();
        let src = super::super::compose(&hdr_refs, &p.utility_term(), vec![fragment(&p)]);
        p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));
    }

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(3, 256);
        for k in 0..100u64 {
            bf.insert(k * 7);
        }
        for k in 0..100u64 {
            assert!(bf.contains(k * 7), "false negative for {}", k * 7);
        }
    }

    #[test]
    fn mostly_negative_for_absent_keys() {
        let mut bf = BloomFilter::new(4, 4096);
        for k in 0..50u64 {
            bf.insert(k);
        }
        let fp = (1000..2000u64).filter(|&k| bf.contains(k)).count();
        assert!(fp < 50, "false positive rate too high: {fp}/1000");
    }

    #[test]
    fn fill_ratio_grows() {
        let mut bf = BloomFilter::new(2, 128);
        let before = bf.fill_ratio();
        for k in 0..60u64 {
            bf.insert(k);
        }
        assert!(bf.fill_ratio() > before);
        assert!(bf.fill_ratio() <= 1.0);
    }
}

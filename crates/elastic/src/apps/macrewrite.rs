//! MAC rewrite: a fixed-function L2 egress step — look up the destination,
//! rewrite source/destination MACs from an elastic next-hop MAC store.
//!
//! An exact-match table `mac_fib` marks known destinations; for those, a
//! hash-indexed bank array `mac_nh` supplies the next-hop destination MAC
//! and the switch's own MAC is stamped as the new source. The store's
//! capacity `mac_banks * mac_cells` is the utility.

use crate::modules::{compose_with_apply, Fragment};

/// Application-level knobs.
#[derive(Debug, Clone)]
pub struct MacRewriteOptions {
    /// FIB table capacity (entries).
    pub fib_size: u64,
    /// The switch's own MAC, stamped as the rewritten source address.
    pub own_mac: u64,
    /// Bounds on the next-hop store shape.
    pub min_banks: u64,
    pub max_banks: u64,
    pub min_cells: u64,
    pub max_cells: Option<u64>,
}

impl Default for MacRewriteOptions {
    fn default() -> Self {
        MacRewriteOptions {
            fib_size: 8192,
            own_mac: 0x02_00_00_00_00_01,
            min_banks: 1,
            max_banks: 2,
            min_cells: 16,
            max_cells: None,
        }
    }
}

impl MacRewriteOptions {
    /// The utility expression: next-hop store capacity.
    pub fn utility(&self) -> String {
        "(mac_banks * mac_cells)".into()
    }
}

/// Generate the MAC-rewrite P4All program.
pub fn source(opts: &MacRewriteOptions) -> String {
    let mut assumes = vec![
        format!("mac_banks >= {} && mac_banks <= {}", opts.min_banks, opts.max_banks),
        format!("mac_cells >= {}", opts.min_cells),
    ];
    if let Some(mc) = opts.max_cells {
        assumes.push(format!("mac_cells <= {mc}"));
    }
    let frag = Fragment {
        symbolics: vec!["mac_banks".into(), "mac_cells".into()],
        assumes,
        metadata: vec![
            "bit<8> mac_known;".into(),
            "bit<32>[mac_banks] mac_idx;".into(),
        ],
        registers: vec![
            "register<bit<48>>[mac_cells][mac_banks] mac_nh;".into(),
        ],
        actions: vec![
            "action mac_hit() {\n    meta.mac_known = 1;\n}".into(),
            "action mac_miss() {\n    meta.mac_known = 0;\n}".into(),
            format!(
                "action mac_rw()[int b] {{\n    meta.mac_idx[b] = hash(hdr.dmac, mac_cells);\n    \
                 hdr.dmac = mac_nh[b][meta.mac_idx[b]];\n    hdr.smac = {};\n}}",
                opts.own_mac
            ),
        ],
        tables: vec![format!(
            "table mac_fib {{\n    key = {{ hdr.dmac; }}\n    actions = {{ mac_hit; \
             mac_miss; }}\n    size = {};\n    default_action = mac_miss;\n}}",
            opts.fib_size
        )],
        controls: vec![
            "control mac_lookup() { apply { mac_fib.apply(); } }".into(),
            "control mac_rewrite() {\n    apply {\n        if (meta.mac_known == 1) {\n            \
             for (b < mac_banks) { mac_rw()[b]; }\n        }\n    }\n}"
                .into(),
        ],
        apply: vec!["mac_lookup.apply();".into(), "mac_rewrite.apply();".into()],
    };
    compose_with_apply(&[("dmac", 48), ("smac", 48)], &opts.utility(), vec![frag], None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_core::Compiler;
    use p4all_pisa::presets;

    #[test]
    fn source_parses() {
        let src = source(&MacRewriteOptions::default());
        let p = p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));
        assert!(p.table("mac_fib").is_some());
        assert!(p.register("mac_nh").is_some());
        assert!(p.optimize.is_some());
    }

    #[test]
    fn compiles_standalone() {
        let src = source(&MacRewriteOptions::default());
        let target = presets::paper_eval(1 << 13);
        let c = Compiler::new(target.clone()).compile(&src).unwrap();
        assert!(c.layout.symbol_values["mac_banks"] >= 1);
        assert!(c.layout.symbol_values["mac_cells"] >= 16);
        p4all_pisa::validate(&c.layout.usage, &target).unwrap();
    }
}

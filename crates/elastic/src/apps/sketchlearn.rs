//! Elastic SketchLearn-style app: multiple count-min sketch instances.
//!
//! SketchLearn maintains per-bit-level sketches of the flow key. Our
//! dialect has no bit-slicing operators, so the bit-plane filtering happens
//! at the controller (documented substitution in DESIGN.md); the data plane
//! is what the paper says it is — "multiple instances of count-min sketch"
//! — each independently elastic, sharing switch resources.

use crate::modules::{cms, compose};

/// Knobs: number of sketch levels and shared shape bounds.
#[derive(Debug, Clone)]
pub struct SketchLearnOptions {
    pub levels: usize,
    pub max_rows_per_level: u64,
    pub min_cols: u64,
}

impl Default for SketchLearnOptions {
    fn default() -> Self {
        SketchLearnOptions { levels: 4, max_rows_per_level: 2, min_cols: 16 }
    }
}

impl SketchLearnOptions {
    fn level_params(&self, level: usize) -> cms::CmsParams {
        cms::CmsParams {
            prefix: format!("lv{level}"),
            key_expr: "hdr.key".into(),
            min_rows: 1,
            max_rows: self.max_rows_per_level,
            min_cols: self.min_cols,
            max_cols: None,
            counter_bits: 32,
        }
    }

    /// Equal-weight utility over every level's `rows * cols`.
    pub fn utility(&self) -> String {
        (0..self.levels)
            .map(|l| self.level_params(l).utility_term())
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

/// Generate the SketchLearn P4All program.
pub fn source(opts: &SketchLearnOptions) -> String {
    let frags = (0..opts.levels).map(|l| cms::fragment(&opts.level_params(l))).collect();
    compose(&[("key", 32)], &opts.utility(), frags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_core::Compiler;
    use p4all_pisa::presets;

    #[test]
    fn source_parses_with_all_levels() {
        let opts = SketchLearnOptions::default();
        let src = source(&opts);
        let p = p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));
        for l in 0..4 {
            assert!(p.register(&format!("lv{l}")).is_some());
        }
    }

    #[test]
    fn compiles_and_every_level_gets_memory() {
        let opts = SketchLearnOptions { levels: 2, max_rows_per_level: 2, min_cols: 8 };
        let src = source(&opts);
        let c = Compiler::new(presets::paper_eval(1 << 15)).compile(&src).unwrap();
        for l in 0..2 {
            let rows = c.layout.symbol_values[&format!("lv{l}_rows")];
            assert!(rows >= 1, "level {l} starved of rows");
        }
    }
}

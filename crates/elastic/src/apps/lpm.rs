//! LPM routing: hash-probed prefix-length levels with longest-match
//! override — a routing co-tenant whose table depth is elastic.
//!
//! One register bank per prefix-length level holds next-hop IDs; a lookup
//! probes every level and the *last* non-empty level wins (levels are
//! ordered shortest → longest prefix, so a later overwrite is the longer
//! match). Both the level count `lpm_levels` and the per-level capacity
//! `lpm_cells` are elastic; the utility is total route capacity
//! `lpm_levels * lpm_cells`.

use crate::modules::{compose_with_apply, Fragment};

/// Application-level knobs.
#[derive(Debug, Clone)]
pub struct LpmOptions {
    /// Bounds on the number of prefix-length levels.
    pub min_levels: u64,
    pub max_levels: u64,
    /// Bounds on routes per level.
    pub min_cells: u64,
    pub max_cells: Option<u64>,
}

impl Default for LpmOptions {
    fn default() -> Self {
        LpmOptions { min_levels: 1, max_levels: 3, min_cells: 16, max_cells: None }
    }
}

impl LpmOptions {
    /// The utility expression: total route capacity.
    pub fn utility(&self) -> String {
        "(lpm_levels * lpm_cells)".into()
    }
}

/// Generate the LPM-routing P4All program.
pub fn source(opts: &LpmOptions) -> String {
    let mut assumes = vec![
        format!("lpm_levels >= {} && lpm_levels <= {}", opts.min_levels, opts.max_levels),
        format!("lpm_cells >= {}", opts.min_cells),
    ];
    if let Some(mc) = opts.max_cells {
        assumes.push(format!("lpm_cells <= {mc}"));
    }
    let frag = Fragment {
        symbolics: vec!["lpm_levels".into(), "lpm_cells".into()],
        assumes,
        metadata: vec![
            "bit<32>[lpm_levels] lpm_idx;".into(),
            "bit<32>[lpm_levels] lpm_hop;".into(),
            "bit<32> nexthop;".into(),
        ],
        registers: vec![
            "register<bit<32>>[lpm_cells][lpm_levels] lpm;".into(),
        ],
        actions: vec![
            "action lpm_init() {\n    meta.nexthop = 0;\n}".into(),
            "action lpm_probe()[int i] {\n    meta.lpm_idx[i] = hash(hdr.dst, lpm_cells);\n    \
             meta.lpm_hop[i] = lpm[i][meta.lpm_idx[i]];\n}"
                .into(),
            "action lpm_take()[int i] {\n    meta.nexthop = meta.lpm_hop[i];\n}".into(),
        ],
        tables: vec![],
        controls: vec![
            "control lpm_lookup() {\n    apply {\n        lpm_init();\n        \
             for (i < lpm_levels) { lpm_probe()[i]; }\n    }\n}"
                .into(),
            "control lpm_select() {\n    apply {\n        for (i < lpm_levels) {\n            \
             if (meta.lpm_hop[i] != 0) { lpm_take()[i]; }\n        }\n    }\n}"
                .into(),
        ],
        apply: vec!["lpm_lookup.apply();".into(), "lpm_select.apply();".into()],
    };
    compose_with_apply(&[("dst", 32)], &opts.utility(), vec![frag], None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_core::Compiler;
    use p4all_pisa::presets;
    use p4all_sim::Switch;

    #[test]
    fn source_parses() {
        let src = source(&LpmOptions::default());
        let p = p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));
        assert!(p.register("lpm").is_some());
        assert!(p.optimize.is_some());
    }

    #[test]
    fn compiles_standalone() {
        let src = source(&LpmOptions::default());
        let target = presets::paper_eval(1 << 13);
        let c = Compiler::new(target.clone()).compile(&src).unwrap();
        assert!(c.layout.symbol_values["lpm_levels"] >= 1);
        assert!(c.layout.symbol_values["lpm_cells"] >= 16);
        p4all_pisa::validate(&c.layout.usage, &target).unwrap();
    }

    #[test]
    fn longest_level_wins_in_sim() {
        let src = source(&LpmOptions::default());
        let c = Compiler::new(presets::paper_eval(1 << 13)).compile(&src).unwrap();
        let levels = c.layout.symbol_values["lpm_levels"];
        let program = p4all_lang::parse(&src).unwrap();
        let mut sw = Switch::build(&c.concrete, &program).unwrap();
        // Seed level 0 everywhere it could hash to, then check the packet
        // picks it up; with >= 2 levels, a longer-prefix entry overrides.
        let cells = c.layout.symbol_values["lpm_cells"] as usize;
        for cell in 0..cells {
            sw.write_register("lpm", 0, cell, 7).unwrap();
        }
        sw.begin_packet();
        sw.set_header("dst", 0x0a000001).unwrap();
        sw.run_packet().unwrap();
        assert_eq!(sw.meta("nexthop").unwrap(), 7, "level-0 route must be taken");
        if levels >= 2 {
            let last = (levels - 1) as usize;
            for cell in 0..cells {
                sw.write_register("lpm", last, cell, 9).unwrap();
            }
            sw.begin_packet();
            sw.set_header("dst", 0x0a000001).unwrap();
            sw.run_packet().unwrap();
            assert_eq!(sw.meta("nexthop").unwrap(), 9, "longest level must override");
        }
    }
}

//! VLAN filtering: a fixed-function ACL plus an elastic per-VLAN traffic
//! counter — the kind of small housekeeping app that co-tenants alongside
//! a flagship like NetCache and stretches into whatever SRAM is left.
//!
//! Structure: an exact-match table `vlan_acl` permits or denies on the
//! VLAN tag (deny by default); permitted traffic is counted into an
//! elastic bank array of hash-indexed counters whose total cell count
//! `vlan_banks * vlan_cells` is the utility.

use crate::modules::{compose_with_apply, Fragment};

/// Application-level knobs.
#[derive(Debug, Clone)]
pub struct VlanOptions {
    /// ACL table capacity (entries).
    pub acl_size: u64,
    /// Bounds on the counter bank count.
    pub min_banks: u64,
    pub max_banks: u64,
    /// Bounds on cells per bank.
    pub min_cells: u64,
    pub max_cells: Option<u64>,
}

impl Default for VlanOptions {
    fn default() -> Self {
        VlanOptions {
            acl_size: 4096,
            min_banks: 1,
            max_banks: 2,
            min_cells: 16,
            max_cells: None,
        }
    }
}

impl VlanOptions {
    /// The utility expression: total counter cells.
    pub fn utility(&self) -> String {
        "(vlan_banks * vlan_cells)".into()
    }
}

/// Generate the VLAN-filtering P4All program.
pub fn source(opts: &VlanOptions) -> String {
    let mut assumes = vec![
        format!("vlan_banks >= {} && vlan_banks <= {}", opts.min_banks, opts.max_banks),
        format!("vlan_cells >= {}", opts.min_cells),
    ];
    if let Some(mc) = opts.max_cells {
        assumes.push(format!("vlan_cells <= {mc}"));
    }
    let frag = Fragment {
        symbolics: vec!["vlan_banks".into(), "vlan_cells".into()],
        assumes,
        metadata: vec![
            "bit<8> vlan_ok;".into(),
            "bit<32>[vlan_banks] vlan_idx;".into(),
        ],
        registers: vec![
            "register<bit<32>>[vlan_cells][vlan_banks] vlan_ctr;".into(),
        ],
        actions: vec![
            "action vlan_permit() {\n    meta.vlan_ok = 1;\n}".into(),
            "action vlan_deny() {\n    meta.vlan_ok = 0;\n}".into(),
            "action vlan_count()[int b] {\n    meta.vlan_idx[b] = hash(hdr.vlan, vlan_cells);\n    \
             vlan_ctr[b][meta.vlan_idx[b]] = vlan_ctr[b][meta.vlan_idx[b]] + 1;\n}"
                .into(),
        ],
        tables: vec![format!(
            "table vlan_acl {{\n    key = {{ hdr.vlan; }}\n    actions = {{ vlan_permit; \
             vlan_deny; }}\n    size = {};\n    default_action = vlan_deny;\n}}",
            opts.acl_size
        )],
        controls: vec![
            "control vlan_filter() { apply { vlan_acl.apply(); } }".into(),
            "control vlan_account() {\n    apply {\n        if (meta.vlan_ok == 1) {\n            \
             for (b < vlan_banks) { vlan_count()[b]; }\n        }\n    }\n}"
                .into(),
        ],
        apply: vec!["vlan_filter.apply();".into(), "vlan_account.apply();".into()],
    };
    compose_with_apply(&[("vlan", 16)], &opts.utility(), vec![frag], None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_core::Compiler;
    use p4all_pisa::presets;

    #[test]
    fn source_parses() {
        let src = source(&VlanOptions::default());
        let p = p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));
        assert!(p.table("vlan_acl").is_some());
        assert!(p.register("vlan_ctr").is_some());
        assert!(p.optimize.is_some());
    }

    #[test]
    fn compiles_standalone() {
        let src = source(&VlanOptions::default());
        let target = presets::paper_eval(1 << 13);
        let c = Compiler::new(target.clone()).compile(&src).unwrap();
        assert!(c.layout.symbol_values["vlan_banks"] >= 1);
        assert!(c.layout.symbol_values["vlan_cells"] >= 16);
        p4all_pisa::validate(&c.layout.usage, &target).unwrap();
    }
}

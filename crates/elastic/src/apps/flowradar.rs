//! Elastic FlowRadar-style flow recorder (Figure 1 lists FlowRadar among
//! the Bloom-filter and hash-table users): a Bloom filter detects *new*
//! flows; a counting table of per-flow packet counters records traffic.
//! Both structures are elastic and compete for resources — more filter
//! bits mean fewer duplicate insertions, more counter slots mean more
//! flows tracked, and the utility weighs the split.
//!
//! Demonstrates three-way module composition (Bloom + hash table fragments
//! plus app-specific glue), the same reuse story as NetCache.

use crate::modules::{bloom, compose_with_apply, hashtable};

/// Application knobs.
#[derive(Debug, Clone)]
pub struct FlowRadarOptions {
    pub filter_weight: f64,
    pub table_weight: f64,
    pub max_hashes: u64,
    pub max_table_stages: u64,
    pub min_filter_bits: u64,
    pub min_slots: u64,
}

impl Default for FlowRadarOptions {
    fn default() -> Self {
        FlowRadarOptions {
            filter_weight: 0.3,
            table_weight: 0.7,
            max_hashes: 3,
            max_table_stages: 2,
            min_filter_bits: 64,
            min_slots: 16,
        }
    }
}

impl FlowRadarOptions {
    pub fn bloom_params(&self) -> bloom::BloomParams {
        bloom::BloomParams {
            prefix: "seen".into(),
            key_expr: "hdr.key".into(),
            min_hashes: 1,
            max_hashes: self.max_hashes,
            min_bits: self.min_filter_bits,
            max_bits: None,
        }
    }

    pub fn table_params(&self) -> hashtable::HashTableParams {
        hashtable::HashTableParams {
            prefix: "flows".into(),
            key_expr: "hdr.key".into(),
            min_stages: 1,
            max_stages: self.max_table_stages,
            min_slots: self.min_slots,
            max_slots: None,
            counter_bits: 32,
        }
    }

    pub fn utility(&self) -> String {
        format!(
            "{} * {} + {} * {}",
            self.filter_weight,
            self.bloom_params().utility_term(),
            self.table_weight,
            self.table_params().utility_term()
        )
    }
}

/// Generate the FlowRadar P4All program. Every packet inserts into the
/// filter (the `seen_op` header is pinned to 1 by the harness for data
/// packets, 0 for control-plane membership queries) and updates the flow
/// table.
pub fn source(opts: &FlowRadarOptions) -> String {
    let bloom_frag = bloom::fragment(&opts.bloom_params());
    let table_frag = hashtable::fragment(&opts.table_params());
    let apply = vec![
        "seen_insert.apply();".to_string(),
        "seen_query.apply();".to_string(),
        "seen_decide.apply();".to_string(),
        "flows_probe_all.apply();".to_string(),
        "flows_update.apply();".to_string(),
    ];
    let mut hdr: Vec<(String, u32)> = vec![("key".into(), 32)];
    hdr.extend(bloom::header_fields(&opts.bloom_params()));
    let hdr_refs: Vec<(&str, u32)> = hdr.iter().map(|(n, b)| (n.as_str(), *b)).collect();
    compose_with_apply(&hdr_refs, &opts.utility(), vec![bloom_frag, table_frag], Some(apply))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_core::Compiler;
    use p4all_pisa::presets;
    use p4all_sim::Switch;

    #[test]
    fn source_parses_and_compiles() {
        let src = source(&FlowRadarOptions::default());
        let c = Compiler::new(presets::paper_eval(1 << 15))
            .compile(&src)
            .unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert!(c.layout.symbol_values["seen_hashes"] >= 1);
        assert!(c.layout.symbol_values["flows_stages"] >= 1);
        p4all_pisa::validate(&c.layout.usage, &presets::paper_eval(1 << 15)).unwrap();
    }

    #[test]
    fn records_flows_and_detects_membership() {
        let src = source(&FlowRadarOptions::default());
        let c = Compiler::new(presets::paper_eval(1 << 15)).compile(&src).unwrap();
        let program = p4all_lang::parse(&src).unwrap();
        let mut sw = Switch::build(&c.concrete, &program).unwrap();

        // Data path: key 7 three times, key 9 once (op=1 -> insert+count).
        for key in [7u64, 7, 9, 7] {
            sw.begin_packet();
            sw.set_header("key", key).unwrap();
            sw.set_header("seen_op", 1).unwrap();
            sw.run_packet().unwrap();
        }
        assert_eq!(sw.meta("flows_count").unwrap(), 3, "key 7 counted thrice");

        // Membership query (op=0): seen key positive, unseen key negative.
        sw.begin_packet();
        sw.set_header("key", 7).unwrap();
        sw.set_header("seen_op", 0).unwrap();
        sw.run_packet().unwrap();
        assert_eq!(sw.meta("seen_member").unwrap(), 1);
        sw.begin_packet();
        sw.set_header("key", 555).unwrap();
        sw.set_header("seen_op", 0).unwrap();
        sw.run_packet().unwrap();
        assert_eq!(sw.meta("seen_member").unwrap(), 0);
    }
}

//! Elastic PRECISION-style heavy-hitter tracker: a multi-stage hash table
//! whose stage count and width stretch with the target.

use crate::modules::{compose, hashtable};

/// Knobs for the tracker.
#[derive(Debug, Clone)]
pub struct PrecisionOptions {
    pub max_stages: u64,
    pub min_slots: u64,
}

impl Default for PrecisionOptions {
    fn default() -> Self {
        PrecisionOptions { max_stages: 3, min_slots: 16 }
    }
}

impl PrecisionOptions {
    pub fn params(&self) -> hashtable::HashTableParams {
        hashtable::HashTableParams {
            prefix: "prec".into(),
            key_expr: "hdr.key".into(),
            min_stages: 1,
            max_stages: self.max_stages,
            min_slots: self.min_slots,
            max_slots: None,
            counter_bits: 32,
        }
    }

    pub fn utility(&self) -> String {
        self.params().utility_term()
    }
}

/// Generate the PRECISION P4All program.
pub fn source(opts: &PrecisionOptions) -> String {
    compose(&[("key", 32)], &opts.utility(), vec![hashtable::fragment(&opts.params())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_core::Compiler;
    use p4all_pisa::presets;

    #[test]
    fn source_parses() {
        let src = source(&PrecisionOptions::default());
        let p = p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));
        assert!(p.register("prec_keys").is_some());
    }

    #[test]
    fn compiles_and_tracks_in_sim() {
        let opts = PrecisionOptions { max_stages: 2, min_slots: 16 };
        let src = source(&opts);
        let c = Compiler::new(presets::paper_eval(1 << 14)).compile(&src).unwrap();
        assert!(c.layout.symbol_values["prec_stages"] >= 1);
        p4all_pisa::validate(&c.layout.usage, &presets::paper_eval(1 << 14)).unwrap();
    }
}

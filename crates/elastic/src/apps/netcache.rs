//! Elastic NetCache: count-min sketch (popularity) + key-value store
//! (hot-key serving) — the paper's flagship application (§3, §6.2).

use crate::modules::{cms, compose_with_apply, kvs};

/// Application-level knobs.
#[derive(Debug, Clone)]
pub struct NetCacheOptions {
    /// Utility weight on the CMS term `rows * cols`.
    pub cms_weight: f64,
    /// Utility weight on the KVS term `kv_items`.
    pub kv_weight: f64,
    /// CMS shape bounds.
    pub cms: cms::CmsParams,
    /// KVS shape bounds.
    pub kvs: kvs::KvsParams,
    /// Guarantee at least this many key-value items (§6.2 uses an assume
    /// to reserve 8 Mb for the store, i.e. `bits / value_bits` items).
    pub min_kv_items: Option<u64>,
    /// Measure the utility in memory bits instead of item counts
    /// (`rows*cols*counter_bits` / `kv_items*value_bits`). With items of
    /// different widths, bit-valued utility makes the weights directly
    /// steer the memory split — the Figure 13 experiment uses this.
    pub utility_in_bits: bool,
}

impl Default for NetCacheOptions {
    fn default() -> Self {
        NetCacheOptions {
            cms_weight: 0.4,
            kv_weight: 0.6,
            cms: cms::CmsParams {
                prefix: "cms".into(),
                key_expr: "hdr.key".into(),
                min_rows: 1,
                max_rows: 4,
                min_cols: 16,
                max_cols: None,
                counter_bits: 32,
            },
            kvs: kvs::KvsParams {
                prefix: "kv".into(),
                key_expr: "hdr.key".into(),
                value_bits: 128,
                min_slices: 1,
                max_slices: None,
                min_cols: 16,
                max_cols: None,
                table_size: 65536,
            },
            min_kv_items: None,
            utility_in_bits: false,
        }
    }
}

impl NetCacheOptions {
    /// The paper's default utility: `0.4 * (rows*cols) + 0.6 * kv_items`.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Figure 13's flipped utility: `0.6 * (rows*cols) + 0.4 * kv_items`.
    pub fn cms_heavy() -> Self {
        NetCacheOptions { cms_weight: 0.6, kv_weight: 0.4, ..Self::default() }
    }

    /// The utility expression for these options.
    pub fn utility(&self) -> String {
        if self.utility_in_bits {
            format!(
                "{} * ({} * {}) + {} * ({} * {})",
                self.cms_weight,
                self.cms.utility_term(),
                self.cms.counter_bits,
                self.kv_weight,
                self.kvs.items_term(),
                self.kvs.value_bits
            )
        } else {
            format!(
                "{} * {} + {} * {}",
                self.cms_weight,
                self.cms.utility_term(),
                self.kv_weight,
                self.kvs.items_term()
            )
        }
    }
}

/// Generate the NetCache P4All program.
pub fn source(opts: &NetCacheOptions) -> String {
    let mut cms_frag = cms::fragment(&opts.cms);
    if let Some(min_items) = opts.min_kv_items {
        cms_frag.assumes.push(format!("{} >= {min_items}", opts.kvs.items_term()));
    }
    let kvs_frag = kvs::fragment(&opts.kvs);
    // NetCache pipeline order: cache lookup, popularity count, minimum,
    // then serve cached values.
    let apply = vec![
        format!("{}_lookup.apply();", opts.kvs.prefix),
        format!("{}_sketch.apply();", opts.cms.prefix),
        format!("{}_minimum.apply();", opts.cms.prefix),
        format!("{}_serve.apply();", opts.kvs.prefix),
    ];
    compose_with_apply(
        &[("key", 32)],
        &opts.utility(),
        vec![cms_frag, kvs_frag],
        Some(apply),
    )
}

/// Simulator runtime configuration matching [`source`]'s naming.
pub fn runtime_config(opts: &NetCacheOptions) -> RuntimeNames {
    RuntimeNames {
        cache_table: opts.kvs.table(),
        hit_action: opts.kvs.hit_action(),
        hit_flag_meta: opts.kvs.hit_meta(),
        min_meta: opts.cms.min_meta(),
        slice_meta: opts.kvs.slice_meta(),
        idx_meta: opts.kvs.idx_meta(),
        value_meta: opts.kvs.value_meta(),
        kv_register: opts.kvs.register(),
        cms_register: opts.cms.prefix.clone(),
        key_header: "key".into(),
    }
}

/// Name bundle consumed by `p4all_sim::NetCacheConfig` (kept stringly here
/// to avoid an elastic → sim dependency).
#[derive(Debug, Clone)]
pub struct RuntimeNames {
    pub cache_table: String,
    pub hit_action: String,
    pub hit_flag_meta: String,
    pub min_meta: String,
    pub slice_meta: String,
    pub idx_meta: String,
    pub value_meta: String,
    pub kv_register: String,
    pub cms_register: String,
    pub key_header: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_core::Compiler;
    use p4all_pisa::presets;

    #[test]
    fn source_parses() {
        let src = source(&NetCacheOptions::default());
        let p = p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));
        assert!(p.register("cms").is_some());
        assert!(p.register("kvs").is_some());
        assert!(p.table("kv_cache").is_some());
        assert!(p.optimize.is_some());
    }

    #[test]
    fn compiles_on_eval_target() {
        let mut opts = NetCacheOptions::default();
        // Keep the test-time ILP small.
        opts.cms.max_rows = 2;
        opts.kvs.max_slices = Some(3);
        let src = source(&opts);
        let c = Compiler::new(presets::paper_eval(1 << 16)).compile(&src).unwrap();
        assert!(c.layout.symbol_values["cms_rows"] >= 1);
        assert!(c.layout.symbol_values["kv_slices"] >= 1);
        p4all_pisa::validate(&c.layout.usage, &presets::paper_eval(1 << 16)).unwrap();
    }

    #[test]
    fn kv_weight_prioritizes_store() {
        // With the KVS favoured and values 4x wider than counters, the
        // store should take the larger share of total memory.
        let mut opts = NetCacheOptions::default();
        opts.cms.max_rows = 2;
        opts.kvs.max_slices = Some(3);
        let src = source(&opts);
        let c = Compiler::new(presets::paper_eval(1 << 16)).compile(&src).unwrap();
        let kv_bits: u64 = c
            .layout
            .registers
            .iter()
            .filter(|r| r.reg == "kvs")
            .map(|r| r.bits())
            .sum();
        let cms_bits: u64 = c
            .layout
            .registers
            .iter()
            .filter(|r| r.reg == "cms")
            .map(|r| r.bits())
            .sum();
        assert!(
            kv_bits > cms_bits,
            "store should dominate memory: kv {kv_bits} vs cms {cms_bits}"
        );
    }

    #[test]
    fn min_kv_items_assume_enforced() {
        let mut opts = NetCacheOptions::default();
        opts.cms.max_rows = 2;
        opts.kvs.max_slices = Some(3);
        opts.min_kv_items = Some(100);
        let src = source(&opts);
        let c = Compiler::new(presets::paper_eval(1 << 16)).compile(&src).unwrap();
        let items =
            c.layout.symbol_values["kv_slices"] * c.layout.symbol_values["kv_cols"];
        assert!(items >= 100, "assume must guarantee 100 items, got {items}");
    }
}

//! Elastic ConQuest-style queue-occupancy estimator.
//!
//! ConQuest keeps `h` time-windowed sketch snapshots; the active window's
//! snapshot absorbs arrivals while the others are read and summed to
//! estimate how much of the current queue a flow contributes. The snapshot
//! count and snapshot width are the elastic parameters. The harness drives
//! the window via a header field (`hdr.epoch`), standing in for the
//! timestamp bits real ConQuest uses.

use crate::modules::{compose_with_apply, Fragment};

/// Knobs for the estimator.
#[derive(Debug, Clone)]
pub struct ConquestOptions {
    pub min_snaps: u64,
    pub max_snaps: u64,
    pub min_cols: u64,
}

impl Default for ConquestOptions {
    fn default() -> Self {
        ConquestOptions { min_snaps: 2, max_snaps: 4, min_cols: 16 }
    }
}

impl ConquestOptions {
    pub fn utility(&self) -> String {
        "cq_snaps * cq_cols".into()
    }
}

/// Generate the ConQuest P4All program.
pub fn source(opts: &ConquestOptions) -> String {
    let frag = Fragment {
        symbolics: vec!["cq_snaps".into(), "cq_cols".into()],
        assumes: vec![
            format!("cq_snaps >= {} && cq_snaps <= {}", opts.min_snaps, opts.max_snaps),
            format!("cq_cols >= {}", opts.min_cols),
        ],
        metadata: vec![
            "bit<32>[cq_snaps] cq_idx;".into(),
            "bit<32> cq_est;".into(),
        ],
        registers: vec!["register<bit<32>>[cq_cols][cq_snaps] cq_snap;".into()],
        actions: vec![
            // Arrival: bump the active window's snapshot.
            "action cq_absorb()[int j] {\n    meta.cq_idx[j] = hash(hdr.key, cq_cols);\n    \
             cq_snap[j][meta.cq_idx[j]] = cq_snap[j][meta.cq_idx[j]] + 1;\n}"
                .into(),
            // Query: accumulate the *other* snapshots into the estimate.
            "action cq_sum()[int j] {\n    meta.cq_idx[j] = hash(hdr.key, cq_cols);\n    \
             meta.cq_est = meta.cq_est + cq_snap[j][meta.cq_idx[j]];\n}"
                .into(),
        ],
        tables: vec![],
        controls: vec![
            "control cq_update() {\n    apply {\n        for (j < cq_snaps) {\n            \
             if (hdr.epoch == j) { cq_absorb()[j]; }\n        }\n    }\n}"
                .into(),
            "control cq_query() {\n    apply {\n        for (j < cq_snaps) {\n            \
             if (hdr.epoch != j) { cq_sum()[j]; }\n        }\n    }\n}"
                .into(),
        ],
        apply: vec![],
    };
    compose_with_apply(
        &[("key", 32), ("epoch", 8)],
        &opts.utility(),
        vec![frag],
        Some(vec!["cq_update.apply();".into(), "cq_query.apply();".into()]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4all_core::Compiler;
    use p4all_pisa::presets;

    #[test]
    fn source_parses() {
        let src = source(&ConquestOptions::default());
        let p = p4all_lang::parse(&src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(&src)));
        assert!(p.register("cq_snap").is_some());
    }

    #[test]
    fn compiles_with_multiple_snapshots() {
        let opts = ConquestOptions { min_snaps: 2, max_snaps: 3, min_cols: 8 };
        let src = source(&opts);
        let c = Compiler::new(presets::paper_eval(1 << 14)).compile(&src).unwrap();
        assert!(c.layout.symbol_values["cq_snaps"] >= 2);
        p4all_pisa::validate(&c.layout.usage, &presets::paper_eval(1 << 14)).unwrap();
    }
}

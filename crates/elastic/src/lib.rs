//! # p4all-elastic — reusable elastic modules and benchmark applications
//!
//! The library the paper's evaluation is built on:
//!
//! - **modules** — elastic count-min sketch, Bloom filter, key-value
//!   store, multi-stage hash table, ID-indexed table, and hierarchical
//!   sketch (every structure family in the paper's Figure 1), each as a
//!   composable P4All [`modules::Fragment`], most with a Rust reference
//!   implementation used as ground truth in tests;
//! - **apps** — the four benchmark applications of Figure 11 (NetCache,
//!   SketchLearn, PRECISION, ConQuest) assembled from those modules, plus
//!   a FlowRadar-style flow recorder demonstrating Bloom + hash-table
//!   composition;
//! - **baselines** — fixed-size, manually-unrolled P4 stand-ins for the
//!   hand-written originals (the Figure 11 LoC comparison).

pub mod apps {
    pub mod conquest;
    pub mod flowradar;
    pub mod lpm;
    pub mod macrewrite;
    pub mod netcache;
    pub mod precision;
    pub mod sketchlearn;
    pub mod vlan;
}
pub mod baselines;
pub mod modules;

pub use modules::{compose, compose_with_apply, Fragment};

//! Property tests: printing then re-parsing is the identity (modulo
//! spans), over randomly generated expressions and programs.

use proptest::prelude::*;

use p4all_lang::ast::*;
use p4all_lang::printer::{print_expr, print_program};
use p4all_lang::{parse, Span};

// ----------------------------------------------------------- expressions

/// Random arithmetic/boolean expressions over a fixed vocabulary: two
/// symbolics (`alpha`, `beta`), one loop variable (`i`), one scalar meta
/// field (`acc`), one meta array (`slot`), one header field (`key`), and
/// one register (`reg`, array-of-arrays).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u64..1000).prop_map(Expr::Int),
        Just(Expr::Symbolic("alpha".into())),
        Just(Expr::Symbolic("beta".into())),
        Just(Expr::IndexVar("i".into())),
        Just(Expr::Meta { field: "acc".into(), index: None }),
        Just(Expr::Header { field: "key".into() }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), bin_op()).prop_map(|(a, b, op)| Expr::Binary {
                op,
                lhs: Box::new(a),
                rhs: Box::new(b),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(e)
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(e)
            }),
            inner.clone().prop_map(|e| Expr::Meta {
                field: "slot".into(),
                index: Some(Box::new(e)),
            }),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::RegisterRead {
                reg: "reg".into(),
                instance: Some(Box::new(a)),
                cell: Box::new(b),
            }),
        ]
    })
}

fn bin_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

/// Wrap an expression into a program that gives every vocabulary item a
/// declaration, with the expression under test as an action guard.
fn harness_program(e: &Expr) -> String {
    format!(
        r#"
symbolic int alpha;
symbolic int beta;
header pkt {{ bit<32> key; }}
struct metadata {{
    bit<32> acc;
    bit<32>[alpha] slot;
    bit<32> out;
}}
register<bit<32>>[beta][alpha] reg;
action probe()[int i] {{
    if ({guard}) {{
        meta.out = 1;
    }}
}}
control Main() {{ apply {{ for (i < alpha) {{ probe()[i]; }} }} }}
"#,
        guard = print_expr(e)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print(parse(print(e))) == print(e) for arbitrary expressions.
    #[test]
    fn expr_roundtrip(e in expr_strategy()) {
        let src = harness_program(&e);
        let program = parse(&src)
            .unwrap_or_else(|err| panic!("{}\nsource:\n{src}", err.render(&src)));
        let action = program.action("probe").unwrap();
        let reparsed = match &action.body[0] {
            Stmt::If { cond, .. } => cond.clone(),
            other => panic!("unexpected body {other:?}"),
        };
        // Expressions carry no spans, so the re-parse must be *structurally
        // identical*, not merely print-equal.
        prop_assert_eq!(&reparsed, &e);
        prop_assert_eq!(print_expr(&reparsed), print_expr(&e));
    }
}

// -------------------------------------------------------------- programs

/// A constrained random program: up to three symbolics, metadata fields,
/// registers, and indexed actions used in loops.
#[derive(Debug, Clone)]
struct RawProgram {
    n_syms: usize,
    meta_bits: Vec<u32>,
    reg_bits: Vec<u32>,
    hash_in_action: Vec<bool>,
    with_table: bool,
    with_branch: bool,
}

fn raw_program() -> impl Strategy<Value = RawProgram> {
    (
        1usize..=3,
        proptest::collection::vec(prop_oneof![Just(8u32), Just(16), Just(32), Just(64)], 1..=4),
        proptest::collection::vec(prop_oneof![Just(8u32), Just(32)], 1..=3),
        proptest::collection::vec(any::<bool>(), 1..=3),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(n_syms, meta_bits, reg_bits, hash_in_action, with_table, with_branch)| {
            RawProgram { n_syms, meta_bits, reg_bits, hash_in_action, with_table, with_branch }
        })
}

fn build_program(raw: &RawProgram) -> Program {
    let sp = Span::default();
    let mut p = Program::default();
    for s in 0..raw.n_syms {
        p.symbolics.push(SymbolicDecl { name: format!("s{s}"), span: sp });
        p.assumes.push(Assume {
            expr: Expr::Binary {
                op: BinOp::Le,
                lhs: Box::new(Expr::Symbolic(format!("s{s}"))),
                rhs: Box::new(Expr::Int(4)),
            },
            span: sp,
        });
    }
    p.optimize = Some(Expr::Symbolic("s0".into()));
    p.headers.push(HeaderDecl { name: "pkt".into(), fields: vec![("key".into(), 32)], span: sp });
    for (i, &bits) in raw.meta_bits.iter().enumerate() {
        p.metadata.push(MetaField {
            name: format!("m{i}"),
            bits,
            count: if i % 2 == 0 { Some(Size::Symbolic("s0".into())) } else { None },
            span: sp,
        });
    }
    for (i, &bits) in raw.reg_bits.iter().enumerate() {
        p.registers.push(RegisterDecl {
            name: format!("r{i}"),
            elem_bits: bits,
            cells: Size::Const(64),
            instances: Some(Size::Symbolic("s0".into())),
            span: sp,
        });
    }
    for (i, &with_hash) in raw.hash_in_action.iter().enumerate() {
        let reg = format!("r{}", i % raw.reg_bits.len());
        let mut body = Vec::new();
        if with_hash && !raw.meta_bits.is_empty() {
            body.push(Stmt::HashAssign {
                lhs: LValue::Meta {
                    field: "m0".into(),
                    index: Some(Expr::IndexVar("i".into())),
                },
                inputs: vec![Expr::Header { field: "key".into() }],
                range: Size::Const(64),
                span: sp,
            });
        }
        body.push(Stmt::Assign {
            lhs: LValue::Register {
                reg: reg.clone(),
                instance: Some(Expr::IndexVar("i".into())),
                cell: Box::new(Expr::Int(0)),
            },
            rhs: Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::RegisterRead {
                    reg,
                    instance: Some(Box::new(Expr::IndexVar("i".into()))),
                    cell: Box::new(Expr::Int(0)),
                }),
                rhs: Box::new(Expr::Int(1)),
            },
            span: sp,
        });
        p.actions.push(ActionDecl {
            name: format!("a{i}"),
            indexed: true,
            index_param: Some("i".into()),
            body,
            span: sp,
        });
    }
    // A plain action for the table / branch arms.
    if raw.with_table || raw.with_branch {
        p.actions.push(ActionDecl {
            name: "touch".into(),
            indexed: false,
            index_param: None,
            body: vec![Stmt::Assign {
                lhs: LValue::Header { field: "key".into() },
                rhs: Expr::Int(7),
                span: sp,
            }],
            span: sp,
        });
    }
    if raw.with_table {
        p.tables.push(TableDecl {
            name: "watch".into(),
            keys: vec![Expr::Header { field: "key".into() }],
            actions: vec!["touch".into()],
            size: 32,
            default_action: Some("touch".into()),
            span: sp,
        });
    }
    let mut main_body = Vec::new();
    for i in 0..raw.hash_in_action.len() {
        main_body.push(Stmt::For {
            var: "i".into(),
            bound: Size::Symbolic("s0".into()),
            body: vec![Stmt::CallAction {
                name: format!("a{i}"),
                index: Some(Expr::IndexVar("i".into())),
                span: sp,
            }],
            span: sp,
        });
    }
    if raw.with_table {
        main_body.push(Stmt::ApplyTable { name: "watch".into(), span: sp });
    }
    if raw.with_branch {
        main_body.push(Stmt::If {
            cond: Expr::Binary {
                op: BinOp::Lt,
                lhs: Box::new(Expr::Header { field: "key".into() }),
                rhs: Box::new(Expr::Int(9)),
            },
            then_body: vec![Stmt::CallAction { name: "touch".into(), index: None, span: sp }],
            else_body: vec![],
            span: sp,
        });
    }
    p.controls.push(ControlDecl { name: "Main".into(), body: main_body, span: sp });
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Printing a generated program yields parseable source whose re-print
    /// is a fixpoint.
    #[test]
    fn program_roundtrip(raw in raw_program()) {
        let p1 = build_program(&raw);
        let text1 = print_program(&p1);
        let p2 = parse(&text1)
            .unwrap_or_else(|e| panic!("{}\nsource:\n{text1}", e.render(&text1)));
        let text2 = print_program(&p2);
        prop_assert_eq!(&text1, &text2, "printer must be a re-parse fixpoint");
        // Full structural equality modulo spans: generation -> source ->
        // parse must be the identity on the AST.
        prop_assert_eq!(p1.strip_spans(), p2.strip_spans());
    }
}

//! Hand-written lexer for the P4All dialect.
//!
//! Supports `//` line comments and `/* ... */` block comments, decimal and
//! hexadecimal integers, simple float literals (used in utility-function
//! weights), identifiers, keywords, and the operator set of the dialect.

use crate::errors::LangError;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Tokenize `src` into a vector ending with an `Eof` token.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn error(&self, msg: impl Into<String>) -> LangError {
        LangError::new(msg, Span::new(self.pos, self.pos + 1, self.line, self.col))
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let Some(b) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start, start, line, col),
                });
                return Ok(out);
            };
            let kind = match b {
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'{' => self.single(TokenKind::LBrace),
                b'}' => self.single(TokenKind::RBrace),
                b'[' => self.single(TokenKind::LBracket),
                b']' => self.single(TokenKind::RBracket),
                b';' => self.single(TokenKind::Semi),
                b',' => self.single(TokenKind::Comma),
                b'.' => self.single(TokenKind::Dot),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'*' => self.single(TokenKind::Star),
                b'/' => self.single(TokenKind::Slash),
                b'=' => self.one_or_two(b'=', TokenKind::Assign, TokenKind::EqEq),
                b'<' => self.one_or_two(b'=', TokenKind::Lt, TokenKind::Le),
                b'>' => self.one_or_two(b'=', TokenKind::Gt, TokenKind::Ge),
                b'!' => self.one_or_two(b'=', TokenKind::Not, TokenKind::Ne),
                b'&' => {
                    if self.peek2() == Some(b'&') {
                        self.bump();
                        self.bump();
                        TokenKind::AndAnd
                    } else {
                        return Err(self.error("expected `&&`"));
                    }
                }
                b'|' => {
                    if self.peek2() == Some(b'|') {
                        self.bump();
                        self.bump();
                        TokenKind::OrOr
                    } else {
                        return Err(self.error("expected `||`"));
                    }
                }
                b'0'..=b'9' => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                other => {
                    return Err(self.error(format!(
                        "unexpected character `{}`",
                        char::from(other)
                    )))
                }
            };
            out.push(Token { kind, span: Span::new(start, self.pos, line, col) });
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn one_or_two(&mut self, second: u8, one: TokenKind, two: TokenKind) -> TokenKind {
        self.bump();
        if self.peek() == Some(second) {
            self.bump();
            two
        } else {
            one
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LangError> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let open = self.error("unterminated block comment");
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(open),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind, LangError> {
        let start = self.pos;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x' | b'X')) {
            self.bump();
            self.bump();
            let hex_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')) {
                self.bump();
            }
            if self.pos == hex_start {
                return Err(self.error("empty hexadecimal literal"));
            }
            let text = &self.src[hex_start..self.pos];
            let v = u64::from_str_radix(text, 16)
                .map_err(|_| self.error("hexadecimal literal out of range"))?;
            return Ok(TokenKind::Int(v));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        // Float: digits '.' digits — but don't eat `1..` style (not in grammar).
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
            let text = &self.src[start..self.pos];
            let v: f64 =
                text.parse().map_err(|_| self.error("malformed float literal"))?;
            return Ok(TokenKind::Float(v));
        }
        let text = &self.src[start..self.pos];
        let v: u64 = text.parse().map_err(|_| self.error("integer literal out of range"))?;
        Ok(TokenKind::Int(v))
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        loop {
            while matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')) {
                self.bump();
            }
            // Namespaced identifier: `tenant::name` is one token, so joint
            // multi-tenant sources keep each tenant's globals distinct
            // without any parser changes.
            if self.peek() == Some(b':')
                && self.peek2() == Some(b':')
                && matches!(
                    self.bytes.get(self.pos + 2),
                    Some(b'a'..=b'z' | b'A'..=b'Z' | b'_')
                )
            {
                self.bump();
                self.bump();
                continue;
            }
            break;
        }
        let text = &self.src[start..self.pos];
        TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_symbolic_declaration() {
        assert_eq!(
            kinds("symbolic int rows;"),
            vec![
                TokenKind::Symbolic,
                TokenKind::KwInt,
                TokenKind::Ident("rows".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("<= >= == != && || < > = ! + - * /"),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Assign,
                TokenKind::Not,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("42 0x1F 0.4 2048"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(31),
                TokenKind::Float(0.4),
                TokenKind::Int(2048),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_comments() {
        let src = "a // line comment\n/* block\ncomment */ b";
        assert_eq!(
            kinds(src),
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lex_register_decl() {
        assert_eq!(
            kinds("register<bit<32>>[cols][rows] cms;"),
            vec![
                TokenKind::Register,
                TokenKind::Lt,
                TokenKind::Bit,
                TokenKind::Lt,
                TokenKind::Int(32),
                TokenKind::Gt,
                TokenKind::Gt,
                TokenKind::LBracket,
                TokenKind::Ident("cols".into()),
                TokenKind::RBracket,
                TokenKind::LBracket,
                TokenKind::Ident("rows".into()),
                TokenKind::RBracket,
                TokenKind::Ident("cms".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.col, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn stray_character_errors() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn lex_namespaced_identifiers() {
        assert_eq!(
            kinds("a::kv_cols cache::cms_rows"),
            vec![
                TokenKind::Ident("a::kv_cols".into()),
                TokenKind::Ident("cache::cms_rows".into()),
                TokenKind::Eof
            ]
        );
        // Deeper nesting stays one token too.
        assert_eq!(kinds("a::b::c")[0], TokenKind::Ident("a::b::c".into()));
        // A single colon is still a lex error (not part of the grammar).
        assert!(lex("a:b").is_err());
        // `::` not followed by an identifier is not consumed into the
        // ident, so the stray colon errors out.
        assert!(lex("a::1").is_err());
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(kinds("forx")[0], TokenKind::Ident("forx".into()));
        assert_eq!(kinds("for")[0], TokenKind::For);
        assert_eq!(kinds("meta")[0], TokenKind::Meta);
        assert_eq!(kinds("hdr")[0], TokenKind::Hdr);
    }
}

//! # p4all-lang — frontend for the P4All elastic dialect of P4
//!
//! Implements the language of *Elastic Switch Programming with P4All*
//! (HotNets 2020): P4-16-style headers, metadata, registers, actions,
//! exact-match tables and controls, extended with the paper's four elastic
//! constructs —
//!
//! 1. **symbolic values** — `symbolic int rows;`
//! 2. **symbolic arrays** — `register<bit<32>>[cols][rows] cms;` and
//!    `bit<32>[rows] index;`
//! 3. **bounded loops** — `for (i < rows) { incr()[i]; }`
//! 4. **utility functions** — `optimize 0.4 * (rows * cols) + 0.6 * kv;`
//!
//! plus `assume` constraints. The crate provides the lexer, parser, AST and
//! a pretty-printer; compilation lives in `p4all-core`.
//!
//! ```
//! let src = r#"
//!     symbolic int rows;
//!     assume rows >= 1 && rows <= 4;
//!     optimize rows;
//!     struct metadata { bit<32>[rows] count; }
//! "#;
//! let program = p4all_lang::parse(src).unwrap();
//! assert_eq!(program.symbolics[0].name, "rows");
//! ```

pub mod ast;
pub mod diag;
pub mod errors;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod tenant;
pub mod token;

pub use ast::{
    ActionDecl, Assume, BinOp, ControlDecl, Expr, HeaderDecl, LValue, MetaField, Program,
    RegisterDecl, Size, Stmt, SymbolicDecl, TableDecl, UnOp,
};
pub use diag::{Diagnostic, Note, Severity};
pub use errors::LangError;
pub use parser::parse;
pub use printer::{print_expr, print_program};
pub use span::Span;
pub use tenant::{
    local_name, merge_programs, namespace_program, qualify, tenant_of, Tenant,
};

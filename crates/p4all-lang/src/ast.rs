//! Abstract syntax of the P4All dialect.
//!
//! The dialect implements every elastic construct of the paper —
//! `symbolic int`, `assume`, `optimize`, symbolic arrays of registers and
//! metadata, iteration-indexed actions, and `for (i < sym)` loops — on top
//! of a compact P4-16-like core (headers, metadata struct, registers,
//! actions, exact-match tables, controls). A program with no symbolic
//! construct is plain P4 in this dialect (backward compatibility).

use crate::span::Span;

/// A whole P4All translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    pub symbolics: Vec<SymbolicDecl>,
    pub assumes: Vec<Assume>,
    pub optimize: Option<Expr>,
    pub headers: Vec<HeaderDecl>,
    pub metadata: Vec<MetaField>,
    pub registers: Vec<RegisterDecl>,
    pub actions: Vec<ActionDecl>,
    pub tables: Vec<TableDecl>,
    pub controls: Vec<ControlDecl>,
}

impl Program {
    /// Find an action by name.
    pub fn action(&self, name: &str) -> Option<&ActionDecl> {
        self.actions.iter().find(|a| a.name == name)
    }

    /// Find a control by name.
    pub fn control(&self, name: &str) -> Option<&ControlDecl> {
        self.controls.iter().find(|c| c.name == name)
    }

    /// Find a register by name.
    pub fn register(&self, name: &str) -> Option<&RegisterDecl> {
        self.registers.iter().find(|r| r.name == name)
    }

    /// Find a metadata field by name.
    pub fn meta_field(&self, name: &str) -> Option<&MetaField> {
        self.metadata.iter().find(|m| m.name == name)
    }

    /// Find a table by name.
    pub fn table(&self, name: &str) -> Option<&TableDecl> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Find a symbolic value by name.
    pub fn symbolic(&self, name: &str) -> Option<&SymbolicDecl> {
        self.symbolics.iter().find(|s| s.name == name)
    }

    /// True if the program uses no elastic construct at all.
    pub fn is_plain_p4(&self) -> bool {
        self.symbolics.is_empty()
    }

    /// The entry control: the last declared control (P4All programs list
    /// leaf controls first, then the composition, mirroring the paper's
    /// NetCache example).
    pub fn entry_control(&self) -> Option<&ControlDecl> {
        self.controls.last()
    }

    /// A copy of the program with every span reset to `Span::default()`.
    ///
    /// Two programs are *structurally* equal when their stripped forms are
    /// `==`: generated ASTs (all-default spans) compare equal to their own
    /// print→parse round trip, which carries real source positions.
    pub fn strip_spans(&self) -> Program {
        let sp = Span::default();
        Program {
            symbolics: self
                .symbolics
                .iter()
                .map(|s| SymbolicDecl { name: s.name.clone(), span: sp })
                .collect(),
            assumes: self
                .assumes
                .iter()
                .map(|a| Assume { expr: a.expr.clone(), span: sp })
                .collect(),
            optimize: self.optimize.clone(),
            headers: self
                .headers
                .iter()
                .map(|h| HeaderDecl { name: h.name.clone(), fields: h.fields.clone(), span: sp })
                .collect(),
            metadata: self
                .metadata
                .iter()
                .map(|m| MetaField {
                    name: m.name.clone(),
                    bits: m.bits,
                    count: m.count.clone(),
                    span: sp,
                })
                .collect(),
            registers: self
                .registers
                .iter()
                .map(|r| RegisterDecl {
                    name: r.name.clone(),
                    elem_bits: r.elem_bits,
                    cells: r.cells.clone(),
                    instances: r.instances.clone(),
                    span: sp,
                })
                .collect(),
            actions: self
                .actions
                .iter()
                .map(|a| ActionDecl {
                    name: a.name.clone(),
                    indexed: a.indexed,
                    index_param: a.index_param.clone(),
                    body: a.body.iter().map(strip_stmt).collect(),
                    span: sp,
                })
                .collect(),
            tables: self
                .tables
                .iter()
                .map(|t| TableDecl {
                    name: t.name.clone(),
                    keys: t.keys.clone(),
                    actions: t.actions.clone(),
                    size: t.size,
                    default_action: t.default_action.clone(),
                    span: sp,
                })
                .collect(),
            controls: self
                .controls
                .iter()
                .map(|c| ControlDecl {
                    name: c.name.clone(),
                    body: c.body.iter().map(strip_stmt).collect(),
                    span: sp,
                })
                .collect(),
        }
    }
}

/// Recursively reset statement spans (expressions carry none).
fn strip_stmt(s: &Stmt) -> Stmt {
    let sp = Span::default();
    match s {
        Stmt::Assign { lhs, rhs, .. } => Stmt::Assign { lhs: lhs.clone(), rhs: rhs.clone(), span: sp },
        Stmt::HashAssign { lhs, inputs, range, .. } => Stmt::HashAssign {
            lhs: lhs.clone(),
            inputs: inputs.clone(),
            range: range.clone(),
            span: sp,
        },
        Stmt::If { cond, then_body, else_body, .. } => Stmt::If {
            cond: cond.clone(),
            then_body: then_body.iter().map(strip_stmt).collect(),
            else_body: else_body.iter().map(strip_stmt).collect(),
            span: sp,
        },
        Stmt::For { var, bound, body, .. } => Stmt::For {
            var: var.clone(),
            bound: bound.clone(),
            body: body.iter().map(strip_stmt).collect(),
            span: sp,
        },
        Stmt::CallAction { name, index, .. } => {
            Stmt::CallAction { name: name.clone(), index: index.clone(), span: sp }
        }
        Stmt::ApplyTable { name, .. } => Stmt::ApplyTable { name: name.clone(), span: sp },
        Stmt::ApplyControl { name, .. } => Stmt::ApplyControl { name: name.clone(), span: sp },
    }
}

/// `symbolic int NAME;`
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicDecl {
    pub name: String,
    pub span: Span,
}

/// `assume EXPR;` — a compile-time constraint on symbolic values.
#[derive(Debug, Clone, PartialEq)]
pub struct Assume {
    pub expr: Expr,
    pub span: Span,
}

/// An array extent: compile-time constant or symbolic value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Size {
    Const(u64),
    Symbolic(String),
}

impl Size {
    /// The symbolic name, if elastic.
    pub fn symbolic_name(&self) -> Option<&str> {
        match self {
            Size::Symbolic(s) => Some(s),
            Size::Const(_) => None,
        }
    }
}

/// `header NAME { bit<N> field; ... }` — all header fields share one flat
/// `hdr.field` namespace (duplicate field names across headers are an
/// elaboration error).
#[derive(Debug, Clone, PartialEq)]
pub struct HeaderDecl {
    pub name: String,
    pub fields: Vec<(String, u32)>,
    pub span: Span,
}

/// One field of `struct metadata { ... }`. `count` is `Some` for elastic
/// metadata arrays (`bit<32>[rows] index;`), `None` for scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaField {
    pub name: String,
    pub bits: u32,
    pub count: Option<Size>,
    pub span: Span,
}

/// `register<bit<B>>[cells][instances] NAME;`
///
/// `instances` is `None` for a single register array, `Some` for a symbolic
/// array of register arrays (the CMS matrix of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterDecl {
    pub name: String,
    pub elem_bits: u32,
    pub cells: Size,
    pub instances: Option<Size>,
    pub span: Span,
}

impl RegisterDecl {
    /// True if any extent is symbolic.
    pub fn is_elastic(&self) -> bool {
        self.cells.symbolic_name().is_some()
            || self.instances.as_ref().and_then(|s| s.symbolic_name()).is_some()
    }
}

/// `action NAME()[int i] { ... }` — `indexed` actions take the enclosing
/// loop iteration as a parameter; plain actions are inelastic.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionDecl {
    pub name: String,
    pub indexed: bool,
    pub index_param: Option<String>,
    pub body: Vec<Stmt>,
    pub span: Span,
}

/// An exact-match table with constant size (table placement is outside the
/// ILP, per §4.4 of the paper; tables are inelastic).
#[derive(Debug, Clone, PartialEq)]
pub struct TableDecl {
    pub name: String,
    pub keys: Vec<Expr>,
    pub actions: Vec<String>,
    pub size: u64,
    pub default_action: Option<String>,
    pub span: Span,
}

/// `control NAME() { apply { ... } }`
#[derive(Debug, Clone, PartialEq)]
pub struct ControlDecl {
    pub name: String,
    pub body: Vec<Stmt>,
    pub span: Span,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lhs = expr;` — covers metadata writes, header writes, register
    /// writes, and read-modify-writes (register on both sides).
    Assign { lhs: LValue, rhs: Expr, span: Span },
    /// `lhs = hash(input, ..., range);` — the last argument is the hash
    /// range (a symbolic or constant size).
    HashAssign { lhs: LValue, inputs: Vec<Expr>, range: Size, span: Span },
    /// `if (cond) { ... } else { ... }`
    If { cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>, span: Span },
    /// `for (i < bound) { ... }` — the elastic loop.
    For { var: String, bound: Size, body: Vec<Stmt>, span: Span },
    /// `act()[i];` or `act();`
    CallAction { name: String, index: Option<Expr>, span: Span },
    /// `tbl.apply();`
    ApplyTable { name: String, span: Span },
    /// `ctl.apply();`
    ApplyControl { name: String, span: Span },
}

impl Stmt {
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::HashAssign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::For { span, .. }
            | Stmt::CallAction { span, .. }
            | Stmt::ApplyTable { span, .. }
            | Stmt::ApplyControl { span, .. } => *span,
        }
    }
}

/// Assignable places.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// `meta.field` or `meta.field[i]`
    Meta { field: String, index: Option<Expr> },
    /// `hdr.field`
    Header { field: String },
    /// `reg[cell]` or `reg[i][cell]` — `instance` indexes an array of
    /// register arrays.
    Register { reg: String, instance: Option<Expr>, cell: Box<Expr> },
}

/// Expressions. Identifier references are resolved during parsing:
/// enclosing loop/action index variables become [`Expr::IndexVar`],
/// declared symbolic values become [`Expr::Symbolic`].
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Int(u64),
    /// Float literals only appear in `optimize` expressions (weights).
    Float(f64),
    Symbolic(String),
    IndexVar(String),
    Meta { field: String, index: Option<Box<Expr>> },
    Header { field: String },
    RegisterRead { reg: String, instance: Option<Box<Expr>>, cell: Box<Expr> },
    Unary { op: UnOp, operand: Box<Expr> },
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
}

impl Expr {
    /// Collect every symbolic value name referenced by this expression.
    pub fn symbolics(&self, out: &mut Vec<String>) {
        match self {
            Expr::Symbolic(s)
                if !out.contains(s) => {
                    out.push(s.clone());
                }
            Expr::Meta { index: Some(i), .. } => i.symbolics(out),
            Expr::RegisterRead { instance, cell, .. } => {
                if let Some(i) = instance {
                    i.symbolics(out);
                }
                cell.symbolics(out);
            }
            Expr::Unary { operand, .. } => operand.symbolics(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.symbolics(out);
                rhs.symbolics(out);
            }
            _ => {}
        }
    }

    /// True if the expression reads any register.
    pub fn reads_register(&self) -> bool {
        match self {
            Expr::RegisterRead { .. } => true,
            Expr::Unary { operand, .. } => operand.reads_register(),
            Expr::Binary { lhs, rhs, .. } => lhs.reads_register() || rhs.reads_register(),
            Expr::Meta { index: Some(i), .. } => i.reads_register(),
            _ => false,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// True for comparison/boolean operators.
    pub fn is_boolean(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne | BinOp::And
                | BinOp::Or
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(name: &str) -> Expr {
        Expr::Symbolic(name.into())
    }

    #[test]
    fn expr_symbolics_collects_unique_names() {
        let e = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(sym("rows")),
            rhs: Box::new(Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(sym("cols")),
                rhs: Box::new(sym("rows")),
            }),
        };
        let mut out = Vec::new();
        e.symbolics(&mut out);
        assert_eq!(out, vec!["rows".to_string(), "cols".to_string()]);
    }

    #[test]
    fn reads_register_traverses_nesting() {
        let read = Expr::RegisterRead {
            reg: "cms".into(),
            instance: Some(Box::new(Expr::IndexVar("i".into()))),
            cell: Box::new(Expr::Meta { field: "index".into(), index: None }),
        };
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Int(1)),
            rhs: Box::new(read),
        };
        assert!(e.reads_register());
        assert!(!Expr::Int(3).reads_register());
    }

    #[test]
    fn register_elasticity() {
        let r = RegisterDecl {
            name: "cms".into(),
            elem_bits: 32,
            cells: Size::Symbolic("cols".into()),
            instances: Some(Size::Symbolic("rows".into())),
            span: Span::default(),
        };
        assert!(r.is_elastic());
        let fixed = RegisterDecl {
            name: "fwd".into(),
            elem_bits: 8,
            cells: Size::Const(256),
            instances: None,
            span: Span::default(),
        };
        assert!(!fixed.is_elastic());
    }

    #[test]
    fn entry_control_is_last() {
        let mut p = Program::default();
        p.controls.push(ControlDecl { name: "leaf".into(), body: vec![], span: Span::default() });
        p.controls.push(ControlDecl { name: "main".into(), body: vec![], span: Span::default() });
        assert_eq!(p.entry_control().unwrap().name, "main");
    }
}

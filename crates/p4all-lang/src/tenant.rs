//! Multi-tenant program composition.
//!
//! A production switch runs several elastic apps at once (telemetry +
//! cache + firewall). This module turns N independent P4All programs into
//! ONE joint program the ordinary compile pipeline can solve:
//!
//! 1. [`Tenant`] names a program and carries its utility weight;
//! 2. [`namespace_program`] rewrites every *global* name — symbolics,
//!    header/metadata fields, registers, actions, tables, controls — to
//!    `tenant::name`, so `kv_cols` in tenant `a` is distinct from tenant
//!    `b`'s. Loop/action index variables are deliberately left alone
//!    (they are lexically scoped already);
//! 3. [`merge_programs`] concatenates the namespaced declarations in
//!    descending-weight order, sums the per-tenant `optimize` expressions
//!    scaled by weight, and appends a synthetic entry control that applies
//!    each tenant's pipeline in turn.
//!
//! The merged program prints and re-parses with the ordinary
//! printer/parser because `tenant::name` lexes as a single identifier —
//! namespacing needs no new syntax anywhere downstream.

use std::fmt;

use crate::ast::{
    ActionDecl, Assume, BinOp, ControlDecl, Expr, HeaderDecl, LValue, MetaField, Program,
    RegisterDecl, Size, Stmt, SymbolicDecl, TableDecl,
};
use crate::errors::LangError;
use crate::span::Span;
use crate::token::TokenKind;

/// One tenant: a name (a plain identifier) and a utility weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    pub name: String,
    /// Relative utility weight; the joint objective scales this tenant's
    /// `optimize` expression by it. Must be finite and positive.
    pub weight: f64,
}

impl Tenant {
    /// Build a tenant, validating the name is a plain (un-namespaced)
    /// identifier and the weight is finite and positive.
    pub fn new(name: impl Into<String>, weight: f64) -> Result<Tenant, LangError> {
        let name = name.into();
        if !is_plain_ident(&name) {
            return Err(LangError::new(
                format!("invalid tenant name `{name}`: must be a plain identifier"),
                Span::default(),
            ));
        }
        if TokenKind::keyword(&name).is_some() {
            return Err(LangError::new(
                format!("invalid tenant name `{name}`: collides with a keyword"),
                Span::default(),
            ));
        }
        if !(weight.is_finite() && weight > 0.0) {
            return Err(LangError::new(
                format!("invalid tenant weight {weight} for `{name}`: must be finite and > 0"),
                Span::default(),
            ));
        }
        Ok(Tenant { name, weight })
    }

    /// Parse `name` or `name:weight` (the CLI's `--tenant` argument form).
    pub fn parse(spec: &str) -> Result<Tenant, LangError> {
        match spec.rsplit_once(':') {
            Some((name, w)) => {
                let weight: f64 = w.parse().map_err(|_| {
                    LangError::new(
                        format!("invalid tenant weight `{w}` in `{spec}`"),
                        Span::default(),
                    )
                })?;
                Tenant::new(name, weight)
            }
            None => Tenant::new(spec, 1.0),
        }
    }
}

impl fmt::Display for Tenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.weight)
    }
}

fn is_plain_ident(s: &str) -> bool {
    let mut bytes = s.bytes();
    matches!(bytes.next(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'_'))
        && bytes.all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// `tenant::name`.
pub fn qualify(tenant: &str, name: &str) -> String {
    format!("{tenant}::{name}")
}

/// The tenant prefix of a namespaced name, if any.
pub fn tenant_of(name: &str) -> Option<&str> {
    name.split_once("::").map(|(t, _)| t)
}

/// The name with any tenant prefix removed.
pub fn local_name(name: &str) -> &str {
    name.split_once("::").map(|(_, n)| n).unwrap_or(name)
}

/// Rewrite every global name in `p` into the `tenant::` namespace.
///
/// Globals are: symbolic values, header names and fields, metadata fields,
/// registers, actions, tables, and controls — plus every reference to any
/// of them in expressions, lvalues, sizes, table action lists, and apply
/// statements. Loop variables and action index parameters are local and
/// stay untouched. Spans are preserved (they point into the tenant's own
/// source until the merged program is re-printed).
pub fn namespace_program(p: &Program, tenant: &str) -> Program {
    let ns = Namespacer { tenant };
    Program {
        symbolics: p
            .symbolics
            .iter()
            .map(|s| SymbolicDecl { name: ns.q(&s.name), span: s.span })
            .collect(),
        assumes: p
            .assumes
            .iter()
            .map(|a| Assume { expr: ns.expr(&a.expr), span: a.span })
            .collect(),
        optimize: p.optimize.as_ref().map(|e| ns.expr(e)),
        headers: p
            .headers
            .iter()
            .map(|h| HeaderDecl {
                name: ns.q(&h.name),
                fields: h.fields.iter().map(|(f, b)| (ns.q(f), *b)).collect(),
                span: h.span,
            })
            .collect(),
        metadata: p
            .metadata
            .iter()
            .map(|m| MetaField {
                name: ns.q(&m.name),
                bits: m.bits,
                count: m.count.as_ref().map(|s| ns.size(s)),
                span: m.span,
            })
            .collect(),
        registers: p
            .registers
            .iter()
            .map(|r| RegisterDecl {
                name: ns.q(&r.name),
                elem_bits: r.elem_bits,
                cells: ns.size(&r.cells),
                instances: r.instances.as_ref().map(|s| ns.size(s)),
                span: r.span,
            })
            .collect(),
        actions: p
            .actions
            .iter()
            .map(|a| ActionDecl {
                name: ns.q(&a.name),
                indexed: a.indexed,
                index_param: a.index_param.clone(),
                body: a.body.iter().map(|s| ns.stmt(s)).collect(),
                span: a.span,
            })
            .collect(),
        tables: p
            .tables
            .iter()
            .map(|t| TableDecl {
                name: ns.q(&t.name),
                keys: t.keys.iter().map(|k| ns.expr(k)).collect(),
                actions: t.actions.iter().map(|a| ns.q(a)).collect(),
                size: t.size,
                default_action: t.default_action.as_ref().map(|a| ns.q(a)),
                span: t.span,
            })
            .collect(),
        controls: p
            .controls
            .iter()
            .map(|c| ControlDecl {
                name: ns.q(&c.name),
                body: c.body.iter().map(|s| ns.stmt(s)).collect(),
                span: c.span,
            })
            .collect(),
    }
}

struct Namespacer<'a> {
    tenant: &'a str,
}

impl Namespacer<'_> {
    fn q(&self, name: &str) -> String {
        qualify(self.tenant, name)
    }

    fn size(&self, s: &Size) -> Size {
        match s {
            Size::Const(c) => Size::Const(*c),
            Size::Symbolic(name) => Size::Symbolic(self.q(name)),
        }
    }

    fn expr(&self, e: &Expr) -> Expr {
        match e {
            Expr::Int(v) => Expr::Int(*v),
            Expr::Float(v) => Expr::Float(*v),
            Expr::Symbolic(s) => Expr::Symbolic(self.q(s)),
            Expr::IndexVar(v) => Expr::IndexVar(v.clone()),
            Expr::Meta { field, index } => Expr::Meta {
                field: self.q(field),
                index: index.as_ref().map(|i| Box::new(self.expr(i))),
            },
            Expr::Header { field } => Expr::Header { field: self.q(field) },
            Expr::RegisterRead { reg, instance, cell } => Expr::RegisterRead {
                reg: self.q(reg),
                instance: instance.as_ref().map(|i| Box::new(self.expr(i))),
                cell: Box::new(self.expr(cell)),
            },
            Expr::Unary { op, operand } => {
                Expr::Unary { op: *op, operand: Box::new(self.expr(operand)) }
            }
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
            },
        }
    }

    fn lvalue(&self, lv: &LValue) -> LValue {
        match lv {
            LValue::Meta { field, index } => LValue::Meta {
                field: self.q(field),
                index: index.as_ref().map(|i| self.expr(i)),
            },
            LValue::Header { field } => LValue::Header { field: self.q(field) },
            LValue::Register { reg, instance, cell } => LValue::Register {
                reg: self.q(reg),
                instance: instance.as_ref().map(|i| self.expr(i)),
                cell: Box::new(self.expr(cell)),
            },
        }
    }

    fn stmt(&self, s: &Stmt) -> Stmt {
        match s {
            Stmt::Assign { lhs, rhs, span } => {
                Stmt::Assign { lhs: self.lvalue(lhs), rhs: self.expr(rhs), span: *span }
            }
            Stmt::HashAssign { lhs, inputs, range, span } => Stmt::HashAssign {
                lhs: self.lvalue(lhs),
                inputs: inputs.iter().map(|i| self.expr(i)).collect(),
                range: self.size(range),
                span: *span,
            },
            Stmt::If { cond, then_body, else_body, span } => Stmt::If {
                cond: self.expr(cond),
                then_body: then_body.iter().map(|s| self.stmt(s)).collect(),
                else_body: else_body.iter().map(|s| self.stmt(s)).collect(),
                span: *span,
            },
            Stmt::For { var, bound, body, span } => Stmt::For {
                var: var.clone(),
                bound: self.size(bound),
                body: body.iter().map(|s| self.stmt(s)).collect(),
                span: *span,
            },
            Stmt::CallAction { name, index, span } => Stmt::CallAction {
                name: self.q(name),
                index: index.as_ref().map(|i| self.expr(i)),
                span: *span,
            },
            Stmt::ApplyTable { name, span } => {
                Stmt::ApplyTable { name: self.q(name), span: *span }
            }
            Stmt::ApplyControl { name, span } => {
                Stmt::ApplyControl { name: self.q(name), span: *span }
            }
        }
    }
}

/// Merge N tenant programs into one joint program.
///
/// Tenants are ordered by descending weight (ties keep the given order),
/// which also fixes the greedy baseline's allocation order: higher-weight
/// tenants claim resources first. The joint objective is
/// `Σ weight_t · optimize_t`; a synthetic `control Main` — declared last,
/// so it is the merged program's entry control — applies each tenant's
/// entry control in merge order.
///
/// Errors on duplicate tenant names (the namespaces would collide).
pub fn merge_programs(tenants: &[(Tenant, Program)]) -> Result<Program, LangError> {
    let mut order: Vec<&(Tenant, Program)> = tenants.iter().collect();
    order.sort_by(|a, b| b.0.weight.partial_cmp(&a.0.weight).unwrap_or(std::cmp::Ordering::Equal));

    for (i, (t, _)) in order.iter().enumerate() {
        if order[..i].iter().any(|(u, _)| u.name == t.name) {
            return Err(LangError::new(
                format!("duplicate tenant name `{}`", t.name),
                Span::default(),
            ));
        }
    }

    let mut merged = Program::default();
    let mut objective: Option<Expr> = None;
    let mut entry_applies: Vec<Stmt> = Vec::new();

    for (tenant, program) in order {
        let ns = namespace_program(program, &tenant.name);
        if let Some(entry) = ns.entry_control() {
            entry_applies.push(Stmt::ApplyControl {
                name: entry.name.clone(),
                span: Span::default(),
            });
        }
        if let Some(opt) = &ns.optimize {
            let term = if (tenant.weight - 1.0).abs() < f64::EPSILON {
                opt.clone()
            } else {
                Expr::Binary {
                    op: BinOp::Mul,
                    lhs: Box::new(Expr::Float(tenant.weight)),
                    rhs: Box::new(opt.clone()),
                }
            };
            objective = Some(match objective {
                None => term,
                Some(acc) => Expr::Binary {
                    op: BinOp::Add,
                    lhs: Box::new(acc),
                    rhs: Box::new(term),
                },
            });
        }
        merged.symbolics.extend(ns.symbolics);
        merged.assumes.extend(ns.assumes);
        merged.headers.extend(ns.headers);
        merged.metadata.extend(ns.metadata);
        merged.registers.extend(ns.registers);
        merged.actions.extend(ns.actions);
        merged.tables.extend(ns.tables);
        merged.controls.extend(ns.controls);
    }

    merged.optimize = objective;
    merged.controls.push(ControlDecl {
        name: "Main".into(),
        body: entry_applies,
        span: Span::default(),
    });
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::print_program;

    const APP: &str = r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= 1 && rows <= 4;
        optimize rows * cols;
        header h { bit<32> key; }
        struct metadata { bit<32>[rows] index; }
        register<bit<32>>[cols][rows] cms;
        action bump()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
        }
        control Main() { apply { for (i < rows) { bump()[i]; } } }
    "#;

    #[test]
    fn tenant_display_round_trips() {
        let t = Tenant::new("cache", 2.5).unwrap();
        assert_eq!(t.to_string(), "cache:2.5");
        assert_eq!(Tenant::parse(&t.to_string()).unwrap(), t);
        assert_eq!(Tenant::parse("fw").unwrap(), Tenant::new("fw", 1.0).unwrap());
    }

    #[test]
    fn tenant_validation_rejects_bad_specs() {
        assert!(Tenant::new("a::b", 1.0).is_err());
        assert!(Tenant::new("9lives", 1.0).is_err());
        assert!(Tenant::new("for", 1.0).is_err());
        assert!(Tenant::new("ok", 0.0).is_err());
        assert!(Tenant::new("ok", f64::NAN).is_err());
        assert!(Tenant::parse("x:abc").is_err());
    }

    #[test]
    fn qualify_and_split() {
        assert_eq!(qualify("a", "rows"), "a::rows");
        assert_eq!(tenant_of("a::rows"), Some("a"));
        assert_eq!(tenant_of("rows"), None);
        assert_eq!(local_name("a::rows"), "rows");
        assert_eq!(local_name("rows"), "rows");
    }

    #[test]
    fn namespaced_program_round_trips_through_printer() {
        let p = parse(APP).unwrap();
        let ns = namespace_program(&p, "a");
        assert_eq!(ns.symbolics[0].name, "a::rows");
        assert_eq!(ns.registers[0].name, "a::cms");
        assert_eq!(ns.controls[0].name, "a::Main");
        // Index variables stay local.
        let Stmt::For { var, bound, .. } = &ns.controls[0].body[0] else {
            panic!("expected for loop");
        };
        assert_eq!(var, "i");
        assert_eq!(bound, &Size::Symbolic("a::rows".into()));

        let printed = print_program(&ns);
        let back = parse(&printed).unwrap();
        assert_eq!(back.strip_spans(), ns.strip_spans());
    }

    #[test]
    fn merge_orders_by_weight_and_sums_objectives() {
        let a = parse(APP).unwrap();
        let b = parse(APP).unwrap();
        let merged = merge_programs(&[
            (Tenant::new("light", 1.0).unwrap(), a),
            (Tenant::new("heavy", 3.0).unwrap(), b),
        ])
        .unwrap();

        // heavy (weight 3) is merged first.
        assert_eq!(merged.symbolics[0].name, "heavy::rows");
        assert_eq!(merged.symbolics[2].name, "light::rows");

        // The synthetic entry control applies heavy then light.
        let main = merged.entry_control().unwrap();
        assert_eq!(main.name, "Main");
        let names: Vec<_> = main
            .body
            .iter()
            .map(|s| match s {
                Stmt::ApplyControl { name, .. } => name.clone(),
                other => panic!("expected apply, got {other:?}"),
            })
            .collect();
        assert_eq!(names, vec!["heavy::Main".to_string(), "light::Main".to_string()]);

        // Joint objective: 3.0 * heavy + light (weight-1 term unscaled).
        let Some(Expr::Binary { op: BinOp::Add, lhs, .. }) = &merged.optimize else {
            panic!("expected summed objective, got {:?}", merged.optimize);
        };
        let Expr::Binary { op: BinOp::Mul, lhs: w, .. } = lhs.as_ref() else {
            panic!("expected weighted term, got {lhs:?}");
        };
        assert_eq!(w.as_ref(), &Expr::Float(3.0));

        // The merged program prints and re-parses.
        let printed = print_program(&merged);
        let back = parse(&printed).unwrap();
        assert_eq!(back.strip_spans(), merged.strip_spans());
    }

    #[test]
    fn merge_rejects_duplicate_tenants() {
        let a = parse(APP).unwrap();
        let b = parse(APP).unwrap();
        let err = merge_programs(&[
            (Tenant::new("x", 1.0).unwrap(), a),
            (Tenant::new("x", 2.0).unwrap(), b),
        ]);
        assert!(err.is_err());
    }
}

//! Pretty-printer: renders an AST back to P4All source.
//!
//! Printing then re-parsing yields a structurally identical program (tested
//! both in unit tests and as a property over generated programs), which
//! gives a stable formatting pass and lets tools exchange programs as text.

use std::fmt::Write;

use crate::ast::*;

/// Render a whole program as formatted P4All source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for s in &p.symbolics {
        let _ = writeln!(out, "symbolic int {};", s.name);
    }
    for a in &p.assumes {
        let _ = writeln!(out, "assume {};", print_expr(&a.expr));
    }
    if let Some(o) = &p.optimize {
        let _ = writeln!(out, "optimize {};", print_expr(o));
    }
    for h in &p.headers {
        let _ = writeln!(out, "\nheader {} {{", h.name);
        for (f, bits) in &h.fields {
            let _ = writeln!(out, "    bit<{bits}> {f};");
        }
        let _ = writeln!(out, "}}");
    }
    if !p.metadata.is_empty() {
        let _ = writeln!(out, "\nstruct metadata {{");
        for m in &p.metadata {
            match &m.count {
                Some(c) => {
                    let _ = writeln!(out, "    bit<{}>[{}] {};", m.bits, print_size(c), m.name);
                }
                None => {
                    let _ = writeln!(out, "    bit<{}> {};", m.bits, m.name);
                }
            }
        }
        let _ = writeln!(out, "}}");
    }
    if !p.registers.is_empty() {
        let _ = writeln!(out);
    }
    for r in &p.registers {
        match &r.instances {
            Some(i) => {
                let _ = writeln!(
                    out,
                    "register<bit<{}>>[{}][{}] {};",
                    r.elem_bits,
                    print_size(&r.cells),
                    print_size(i),
                    r.name
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "register<bit<{}>>[{}] {};",
                    r.elem_bits,
                    print_size(&r.cells),
                    r.name
                );
            }
        }
    }
    for a in &p.actions {
        let sig = if a.indexed {
            format!("action {}()[int {}]", a.name, a.index_param.as_deref().unwrap_or("i"))
        } else {
            format!("action {}()", a.name)
        };
        let _ = writeln!(out, "\n{sig} {{");
        print_stmts(&mut out, &a.body, 1);
        let _ = writeln!(out, "}}");
    }
    for t in &p.tables {
        let _ = writeln!(out, "\ntable {} {{", t.name);
        if !t.keys.is_empty() {
            let _ = writeln!(out, "    key = {{");
            for k in &t.keys {
                let _ = writeln!(out, "        {};", print_expr(k));
            }
            let _ = writeln!(out, "    }}");
        }
        let _ = writeln!(out, "    actions = {{");
        for a in &t.actions {
            let _ = writeln!(out, "        {a};");
        }
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "    size = {};", t.size);
        if let Some(d) = &t.default_action {
            let _ = writeln!(out, "    default_action = {d};");
        }
        let _ = writeln!(out, "}}");
    }
    for c in &p.controls {
        let _ = writeln!(out, "\ncontrol {}() {{", c.name);
        let _ = writeln!(out, "    apply {{");
        print_stmts(&mut out, &c.body, 2);
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "}}");
    }
    out
}

/// `Display` renders the formatted source text: `program.to_string()` is
/// the exact input generators hand to `parse` (the round-trip contract the
/// fuzz harness relies on).
impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&print_program(self))
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmts(out: &mut String, stmts: &[Stmt], level: usize) {
    for s in stmts {
        print_stmt(out, s, level);
    }
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match s {
        Stmt::Assign { lhs, rhs, .. } => {
            let _ = writeln!(out, "{} = {};", print_lvalue(lhs), print_expr(rhs));
        }
        Stmt::HashAssign { lhs, inputs, range, .. } => {
            let args: Vec<String> = inputs
                .iter()
                .map(print_expr)
                .chain(std::iter::once(print_size(range)))
                .collect();
            let _ = writeln!(out, "{} = hash({});", print_lvalue(lhs), args.join(", "));
        }
        Stmt::If { cond, then_body, else_body, .. } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            print_stmts(out, then_body, level + 1);
            indent(out, level);
            if else_body.is_empty() {
                let _ = writeln!(out, "}}");
            } else {
                let _ = writeln!(out, "}} else {{");
                print_stmts(out, else_body, level + 1);
                indent(out, level);
                let _ = writeln!(out, "}}");
            }
        }
        Stmt::For { var, bound, body, .. } => {
            let _ = writeln!(out, "for ({var} < {}) {{", print_size(bound));
            print_stmts(out, body, level + 1);
            indent(out, level);
            let _ = writeln!(out, "}}");
        }
        Stmt::CallAction { name, index, .. } => match index {
            Some(i) => {
                let _ = writeln!(out, "{name}()[{}];", print_expr(i));
            }
            None => {
                let _ = writeln!(out, "{name}();");
            }
        },
        Stmt::ApplyTable { name, .. } | Stmt::ApplyControl { name, .. } => {
            let _ = writeln!(out, "{name}.apply();");
        }
    }
}

/// Render a size.
pub fn print_size(s: &Size) -> String {
    match s {
        Size::Const(v) => v.to_string(),
        Size::Symbolic(n) => n.clone(),
    }
}

/// Render an lvalue.
pub fn print_lvalue(l: &LValue) -> String {
    match l {
        LValue::Meta { field, index: Some(i) } => format!("meta.{field}[{}]", print_expr(i)),
        LValue::Meta { field, index: None } => format!("meta.{field}"),
        LValue::Header { field } => format!("hdr.{field}"),
        LValue::Register { reg, instance: Some(i), cell } => {
            format!("{reg}[{}][{}]", print_expr(i), print_expr(cell))
        }
        LValue::Register { reg, instance: None, cell } => {
            format!("{reg}[{}]", print_expr(cell))
        }
    }
}

/// Render an expression with full parenthesisation of nested operators
/// (so precedence never needs re-deriving on re-parse).
pub fn print_expr(e: &Expr) -> String {
    print_expr_prec(e, 0)
}

fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
    }
}

fn bin_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn print_expr_prec(e: &Expr, parent: u8) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            // Keep a decimal point so the literal re-lexes as a float.
            if v.fract() == 0.0 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        Expr::Symbolic(s) | Expr::IndexVar(s) => s.clone(),
        Expr::Meta { field, index: Some(i) } => {
            format!("meta.{field}[{}]", print_expr_prec(i, 0))
        }
        Expr::Meta { field, index: None } => format!("meta.{field}"),
        Expr::Header { field } => format!("hdr.{field}"),
        Expr::RegisterRead { reg, instance: Some(i), cell } => {
            format!("{reg}[{}][{}]", print_expr_prec(i, 0), print_expr_prec(cell, 0))
        }
        Expr::RegisterRead { reg, instance: None, cell } => {
            format!("{reg}[{}]", print_expr_prec(cell, 0))
        }
        Expr::Unary { op, operand } => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{sym}{}", print_expr_prec(operand, 6))
        }
        Expr::Binary { op, lhs, rhs } => {
            let p = bin_prec(*op);
            // Comparisons are non-associative in the grammar: a nested
            // comparison on either side needs its own parentheses.
            let lhs_min = if matches!(
                op,
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
            ) {
                p + 1
            } else {
                p
            };
            let s = format!(
                "{} {} {}",
                print_expr_prec(lhs, lhs_min),
                bin_symbol(*op),
                print_expr_prec(rhs, p + 1)
            );
            if p < parent {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const ROUNDTRIP_SRC: &str = r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= 1 && rows <= 4;
        optimize 0.4 * (rows * cols) + 0.6 * rows;

        header ipv4 { bit<32> key; }
        struct metadata {
            bit<32>[rows] index;
            bit<32> min;
        }
        register<bit<32>>[cols][rows] cms;

        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
        }
        action fwd() { hdr.key = 0; }
        table t {
            key = { hdr.key; }
            actions = { fwd; }
            size = 64;
            default_action = fwd;
        }
        control c() {
            apply {
                for (i < rows) { incr()[i]; }
                if (meta.min < 3) { fwd(); } else { t.apply(); }
            }
        }
    "#;

    #[test]
    fn print_parse_roundtrip_is_identity() {
        let p1 = parse(ROUNDTRIP_SRC).unwrap();
        let printed1 = print_program(&p1);
        let p2 = parse(&printed1).unwrap_or_else(|e| panic!("{}", e.render(&printed1)));
        let printed2 = print_program(&p2);
        assert_eq!(printed1, printed2, "printer must be a fixpoint under re-parse");
        // Also structurally equal modulo spans: compare by printing.
        assert_eq!(p1.symbolics.len(), p2.symbolics.len());
        assert_eq!(p1.actions.len(), p2.actions.len());
    }

    #[test]
    fn expr_precedence_printing() {
        let p = parse("symbolic int a; symbolic int b; optimize (a + b) * a;").unwrap();
        let s = print_expr(&p.optimize.unwrap());
        assert_eq!(s, "(a + b) * a");
    }

    #[test]
    fn no_gratuitous_parens() {
        let p = parse("symbolic int a; symbolic int b; optimize a * b + a;").unwrap();
        let s = print_expr(&p.optimize.unwrap());
        assert_eq!(s, "a * b + a");
    }

    #[test]
    fn float_weights_survive_roundtrip() {
        let p = parse("symbolic int a; optimize 0.4 * a;").unwrap();
        let s = print_expr(&p.optimize.unwrap());
        assert_eq!(s, "0.4 * a");
        // integral float keeps its decimal point
        let p = parse("symbolic int a; optimize 2.0 * a;").unwrap();
        assert_eq!(print_expr(&p.optimize.unwrap()), "2.0 * a");
    }

    #[test]
    fn comparison_chain_parens() {
        let p = parse("symbolic int a; assume (a >= 1) && (a <= 5);").unwrap();
        let s = print_expr(&p.assumes[0].expr);
        assert_eq!(s, "a >= 1 && a <= 5");
    }
}

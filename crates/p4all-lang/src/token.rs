//! Token kinds produced by the lexer.

use std::fmt;

use crate::span::Span;

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// All token kinds of the P4All dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // literals and names
    Ident(String),
    Int(u64),
    Float(f64),

    // keywords
    Symbolic,
    KwInt,
    Assume,
    Optimize,
    Register,
    Bit,
    Struct,
    Metadata,
    Header,
    Action,
    Table,
    Control,
    Apply,
    For,
    If,
    Else,
    Key,
    Actions,
    Size,
    DefaultAction,
    Hash,
    Meta,
    Hdr,

    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Assign,   // =
    Plus,
    Minus,
    Star,
    Slash,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Not,

    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        Some(match s {
            "symbolic" => TokenKind::Symbolic,
            "int" => TokenKind::KwInt,
            "assume" => TokenKind::Assume,
            "optimize" => TokenKind::Optimize,
            "register" => TokenKind::Register,
            "bit" => TokenKind::Bit,
            "struct" => TokenKind::Struct,
            "metadata" => TokenKind::Metadata,
            "header" => TokenKind::Header,
            "action" => TokenKind::Action,
            "table" => TokenKind::Table,
            "control" => TokenKind::Control,
            "apply" => TokenKind::Apply,
            "for" => TokenKind::For,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "key" => TokenKind::Key,
            "actions" => TokenKind::Actions,
            "size" => TokenKind::Size,
            "default_action" => TokenKind::DefaultAction,
            "hash" => TokenKind::Hash,
            "meta" => TokenKind::Meta,
            "hdr" => TokenKind::Hdr,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Symbolic => write!(f, "`symbolic`"),
            TokenKind::KwInt => write!(f, "`int`"),
            TokenKind::Assume => write!(f, "`assume`"),
            TokenKind::Optimize => write!(f, "`optimize`"),
            TokenKind::Register => write!(f, "`register`"),
            TokenKind::Bit => write!(f, "`bit`"),
            TokenKind::Struct => write!(f, "`struct`"),
            TokenKind::Metadata => write!(f, "`metadata`"),
            TokenKind::Header => write!(f, "`header`"),
            TokenKind::Action => write!(f, "`action`"),
            TokenKind::Table => write!(f, "`table`"),
            TokenKind::Control => write!(f, "`control`"),
            TokenKind::Apply => write!(f, "`apply`"),
            TokenKind::For => write!(f, "`for`"),
            TokenKind::If => write!(f, "`if`"),
            TokenKind::Else => write!(f, "`else`"),
            TokenKind::Key => write!(f, "`key`"),
            TokenKind::Actions => write!(f, "`actions`"),
            TokenKind::Size => write!(f, "`size`"),
            TokenKind::DefaultAction => write!(f, "`default_action`"),
            TokenKind::Hash => write!(f, "`hash`"),
            TokenKind::Meta => write!(f, "`meta`"),
            TokenKind::Hdr => write!(f, "`hdr`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Not => write!(f, "`!`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

//! Diagnostics with source locations.

use std::fmt;

use crate::span::Span;

/// A lexing, parsing, or elaboration error anchored to a source span.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    pub message: String,
    pub span: Span,
}

impl LangError {
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        LangError { message: message.into(), span }
    }

    /// Render the error with the offending source line underlined, in the
    /// style of rustc's single-span diagnostics.
    pub fn render(&self, src: &str) -> String {
        let line_idx = self.span.line.saturating_sub(1) as usize;
        let line = src.lines().nth(line_idx).unwrap_or("");
        let col = self.span.col.saturating_sub(1) as usize;
        let width = (self.span.end.saturating_sub(self.span.start)).max(1).min(
            line.len().saturating_sub(col).max(1),
        );
        let mut out = String::new();
        out.push_str(&format!("error: {} at {}\n", self.message, self.span));
        out.push_str(&format!("  | {line}\n"));
        out.push_str(&format!("  | {}{}\n", " ".repeat(col), "^".repeat(width)));
        out
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_underlines_offending_text() {
        let src = "symbolic int rows;\nassume rows <> 4;\n";
        let err = LangError::new("unexpected token", Span::new(31, 33, 2, 13));
        let rendered = err.render(src);
        assert!(rendered.contains("assume rows <> 4;"));
        assert!(rendered.contains("^^"));
        assert!(rendered.contains("2:13"));
    }

    #[test]
    fn display_contains_location() {
        let err = LangError::new("boom", Span::new(0, 1, 4, 2));
        assert_eq!(format!("{err}"), "boom at 4:2");
    }
}

//! Recursive-descent parser for the P4All dialect.
//!
//! Declarations must precede use (like C): symbolic values before the
//! expressions that mention them, registers before the actions that access
//! them, actions/tables/controls before the controls that invoke them. The
//! parser resolves bare identifiers during parsing using that rule —
//! loop/action index variables shadow symbolic values.

use crate::ast::*;
use crate::errors::LangError;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parse a P4All source text into a [`Program`].
pub fn parse(src: &str) -> Result<Program, LangError> {
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    program: Program,
    /// Stack of in-scope index variables (for-loop vars, action index params).
    index_scope: Vec<String>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0, program: Program::default(), index_scope: Vec::new() }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        let i = (self.pos + off).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> LangError {
        LangError::new(msg, self.span())
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, LangError> {
        if *self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), LangError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok((s, span))
            }
            // `key`, `actions`, `size`, `default_action` are contextual
            // keywords (table bodies only); elsewhere they are ordinary
            // identifiers, so e.g. `bit<32> key;` parses.
            TokenKind::Key => {
                self.bump();
                Ok(("key".into(), span))
            }
            TokenKind::Actions => {
                self.bump();
                Ok(("actions".into(), span))
            }
            TokenKind::Size => {
                self.bump();
                Ok(("size".into(), span))
            }
            TokenKind::DefaultAction => {
                self.bump();
                Ok(("default_action".into(), span))
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_int(&mut self) -> Result<u64, LangError> {
        match *self.peek() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(self.error(format!("expected integer, found {other}"))),
        }
    }

    // ---------------------------------------------------------------- tops

    fn program(mut self) -> Result<Program, LangError> {
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Symbolic => self.symbolic_decl()?,
                TokenKind::Assume => self.assume()?,
                TokenKind::Optimize => self.optimize()?,
                TokenKind::Header => self.header_decl()?,
                TokenKind::Struct => self.metadata_struct()?,
                TokenKind::Register => self.register_decl()?,
                TokenKind::Action => self.action_decl()?,
                TokenKind::Table => self.table_decl()?,
                TokenKind::Control => self.control_decl()?,
                other => {
                    return Err(self.error(format!(
                        "expected a top-level declaration, found {other}"
                    )))
                }
            }
        }
        Ok(self.program)
    }

    fn symbolic_decl(&mut self) -> Result<(), LangError> {
        self.expect(TokenKind::Symbolic)?;
        self.expect(TokenKind::KwInt)?;
        let (name, span) = self.expect_ident()?;
        if self.program.symbolic(&name).is_some() {
            return Err(LangError::new(format!("symbolic value `{name}` redeclared"), span));
        }
        self.expect(TokenKind::Semi)?;
        self.program.symbolics.push(SymbolicDecl { name, span });
        Ok(())
    }

    fn assume(&mut self) -> Result<(), LangError> {
        let span = self.span();
        self.expect(TokenKind::Assume)?;
        let expr = self.expr()?;
        self.expect(TokenKind::Semi)?;
        self.program.assumes.push(Assume { expr, span: span.to(self.prev_span()) });
        Ok(())
    }

    fn optimize(&mut self) -> Result<(), LangError> {
        let span = self.span();
        self.expect(TokenKind::Optimize)?;
        if self.program.optimize.is_some() {
            return Err(LangError::new("duplicate `optimize` declaration", span));
        }
        let expr = self.expr()?;
        self.expect(TokenKind::Semi)?;
        self.program.optimize = Some(expr);
        Ok(())
    }

    fn bit_type(&mut self) -> Result<u32, LangError> {
        self.expect(TokenKind::Bit)?;
        self.expect(TokenKind::Lt)?;
        let bits = self.expect_int()?;
        if bits == 0 || bits > 128 {
            return Err(self.error(format!("bit width {bits} out of range 1..=128")));
        }
        self.expect(TokenKind::Gt)?;
        Ok(bits as u32)
    }

    fn header_decl(&mut self) -> Result<(), LangError> {
        let span = self.span();
        self.expect(TokenKind::Header)?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            let bits = self.bit_type()?;
            let (fname, fspan) = self.expect_ident()?;
            if self.header_field_bits(&fname).is_some()
                || fields.iter().any(|(n, _)| *n == fname)
            {
                return Err(LangError::new(
                    format!("header field `{fname}` redeclared (fields share one namespace)"),
                    fspan,
                ));
            }
            self.expect(TokenKind::Semi)?;
            fields.push((fname, bits));
        }
        self.expect(TokenKind::RBrace)?;
        self.program.headers.push(HeaderDecl { name, fields, span: span.to(self.prev_span()) });
        Ok(())
    }

    fn header_field_bits(&self, field: &str) -> Option<u32> {
        self.program
            .headers
            .iter()
            .flat_map(|h| h.fields.iter())
            .find(|(n, _)| n == field)
            .map(|&(_, b)| b)
    }

    fn size(&mut self) -> Result<Size, LangError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Size::Const(v))
            }
            TokenKind::Ident(s) => {
                if self.program.symbolic(&s).is_none() {
                    return Err(self.error(format!(
                        "`{s}` is not a declared symbolic value (array extents must be \
                         constants or symbolic values)"
                    )));
                }
                self.bump();
                Ok(Size::Symbolic(s))
            }
            other => Err(self.error(format!("expected a size, found {other}"))),
        }
    }

    fn metadata_struct(&mut self) -> Result<(), LangError> {
        self.expect(TokenKind::Struct)?;
        self.expect(TokenKind::Metadata)?;
        self.expect(TokenKind::LBrace)?;
        while *self.peek() != TokenKind::RBrace {
            let span = self.span();
            let bits = self.bit_type()?;
            let count = if *self.peek() == TokenKind::LBracket {
                self.bump();
                let s = self.size()?;
                self.expect(TokenKind::RBracket)?;
                Some(s)
            } else {
                None
            };
            let (name, nspan) = self.expect_ident()?;
            if self.program.meta_field(&name).is_some() {
                return Err(LangError::new(format!("metadata field `{name}` redeclared"), nspan));
            }
            self.expect(TokenKind::Semi)?;
            self.program.metadata.push(MetaField {
                name,
                bits,
                count,
                span: span.to(self.prev_span()),
            });
        }
        self.expect(TokenKind::RBrace)?;
        Ok(())
    }

    fn register_decl(&mut self) -> Result<(), LangError> {
        let span = self.span();
        self.expect(TokenKind::Register)?;
        self.expect(TokenKind::Lt)?;
        let elem_bits = self.bit_type()?;
        self.expect(TokenKind::Gt)?;
        self.expect(TokenKind::LBracket)?;
        let cells = self.size()?;
        self.expect(TokenKind::RBracket)?;
        let instances = if *self.peek() == TokenKind::LBracket {
            self.bump();
            let s = self.size()?;
            self.expect(TokenKind::RBracket)?;
            Some(s)
        } else {
            None
        };
        let (name, nspan) = self.expect_ident()?;
        if self.program.register(&name).is_some() {
            return Err(LangError::new(format!("register `{name}` redeclared"), nspan));
        }
        self.expect(TokenKind::Semi)?;
        self.program.registers.push(RegisterDecl {
            name,
            elem_bits,
            cells,
            instances,
            span: span.to(self.prev_span()),
        });
        Ok(())
    }

    fn action_decl(&mut self) -> Result<(), LangError> {
        let span = self.span();
        self.expect(TokenKind::Action)?;
        let (name, nspan) = self.expect_ident()?;
        if self.program.action(&name).is_some() {
            return Err(LangError::new(format!("action `{name}` redeclared"), nspan));
        }
        self.expect(TokenKind::LParen)?;
        self.expect(TokenKind::RParen)?;
        let (indexed, index_param) = if *self.peek() == TokenKind::LBracket {
            self.bump();
            self.expect(TokenKind::KwInt)?;
            let (p, _) = self.expect_ident()?;
            self.expect(TokenKind::RBracket)?;
            (true, Some(p))
        } else {
            (false, None)
        };
        if let Some(p) = &index_param {
            self.index_scope.push(p.clone());
        }
        let body = self.block()?;
        if index_param.is_some() {
            self.index_scope.pop();
        }
        self.program.actions.push(ActionDecl {
            name,
            indexed,
            index_param,
            body,
            span: span.to(self.prev_span()),
        });
        Ok(())
    }

    fn table_decl(&mut self) -> Result<(), LangError> {
        let span = self.span();
        self.expect(TokenKind::Table)?;
        let (name, nspan) = self.expect_ident()?;
        if self.program.table(&name).is_some() {
            return Err(LangError::new(format!("table `{name}` redeclared"), nspan));
        }
        self.expect(TokenKind::LBrace)?;
        let mut keys = Vec::new();
        let mut actions = Vec::new();
        let mut size = 1024u64;
        let mut default_action = None;
        while *self.peek() != TokenKind::RBrace {
            match self.peek().clone() {
                TokenKind::Key => {
                    self.bump();
                    self.expect(TokenKind::Assign)?;
                    self.expect(TokenKind::LBrace)?;
                    while *self.peek() != TokenKind::RBrace {
                        keys.push(self.expr()?);
                        self.expect(TokenKind::Semi)?;
                    }
                    self.expect(TokenKind::RBrace)?;
                }
                TokenKind::Actions => {
                    self.bump();
                    self.expect(TokenKind::Assign)?;
                    self.expect(TokenKind::LBrace)?;
                    while *self.peek() != TokenKind::RBrace {
                        let (a, aspan) = self.expect_ident()?;
                        if self.program.action(&a).is_none() {
                            return Err(LangError::new(
                                format!("table `{name}` references undeclared action `{a}`"),
                                aspan,
                            ));
                        }
                        actions.push(a);
                        self.expect(TokenKind::Semi)?;
                    }
                    self.expect(TokenKind::RBrace)?;
                }
                TokenKind::Size => {
                    self.bump();
                    self.expect(TokenKind::Assign)?;
                    size = self.expect_int()?;
                    self.expect(TokenKind::Semi)?;
                }
                TokenKind::DefaultAction => {
                    self.bump();
                    self.expect(TokenKind::Assign)?;
                    let (a, aspan) = self.expect_ident()?;
                    if self.program.action(&a).is_none() {
                        return Err(LangError::new(
                            format!("table `{name}` default references undeclared action `{a}`"),
                            aspan,
                        ));
                    }
                    default_action = Some(a);
                    self.expect(TokenKind::Semi)?;
                }
                other => {
                    return Err(self.error(format!(
                        "expected `key`, `actions`, `size`, or `default_action`, found {other}"
                    )))
                }
            }
        }
        self.expect(TokenKind::RBrace)?;
        self.program.tables.push(TableDecl {
            name,
            keys,
            actions,
            size,
            default_action,
            span: span.to(self.prev_span()),
        });
        Ok(())
    }

    fn control_decl(&mut self) -> Result<(), LangError> {
        let span = self.span();
        self.expect(TokenKind::Control)?;
        let (name, nspan) = self.expect_ident()?;
        if self.program.control(&name).is_some() {
            return Err(LangError::new(format!("control `{name}` redeclared"), nspan));
        }
        self.expect(TokenKind::LParen)?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::LBrace)?;
        self.expect(TokenKind::Apply)?;
        let body = self.block()?;
        self.expect(TokenKind::RBrace)?;
        self.program.controls.push(ControlDecl { name, body, span: span.to(self.prev_span()) });
        Ok(())
    }

    // --------------------------------------------------------- statements

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(TokenKind::LBrace)?;
        let mut out = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            out.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        match self.peek().clone() {
            TokenKind::For => self.for_stmt(),
            TokenKind::If => self.if_stmt(),
            TokenKind::Meta | TokenKind::Hdr => self.assign_stmt(),
            TokenKind::Ident(name) => {
                // Disambiguate: `x.apply();`, `x()[i];`, `x();`, or an
                // assignment to a register lvalue `x[...] = ...`.
                match self.peek_at(1) {
                    TokenKind::Dot => self.apply_stmt(name),
                    TokenKind::LParen => self.call_stmt(name),
                    TokenKind::LBracket => self.assign_stmt(),
                    other => Err(self.error(format!(
                        "expected `.apply()`, a call, or an assignment after `{name}`, \
                         found {other}"
                    ))),
                }
            }
            other => Err(self.error(format!("expected a statement, found {other}"))),
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        self.expect(TokenKind::For)?;
        self.expect(TokenKind::LParen)?;
        let (var, _) = self.expect_ident()?;
        self.expect(TokenKind::Lt)?;
        let bound = self.size()?;
        self.expect(TokenKind::RParen)?;
        self.index_scope.push(var.clone());
        let body = self.block()?;
        self.index_scope.pop();
        Ok(Stmt::For { var, bound, body, span: span.to(self.prev_span()) })
    }

    fn if_stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        self.expect(TokenKind::If)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_body = self.block()?;
        let else_body = if *self.peek() == TokenKind::Else {
            self.bump();
            if *self.peek() == TokenKind::If {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then_body, else_body, span: span.to(self.prev_span()) })
    }

    fn apply_stmt(&mut self, name: String) -> Result<Stmt, LangError> {
        let span = self.span();
        self.bump(); // name
        self.expect(TokenKind::Dot)?;
        self.expect(TokenKind::Apply)?;
        self.expect(TokenKind::LParen)?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Semi)?;
        let full = span.to(self.prev_span());
        if self.program.table(&name).is_some() {
            Ok(Stmt::ApplyTable { name, span: full })
        } else if self.program.control(&name).is_some() {
            Ok(Stmt::ApplyControl { name, span: full })
        } else {
            Err(LangError::new(
                format!("`{name}` is neither a declared table nor a declared control"),
                span,
            ))
        }
    }

    fn call_stmt(&mut self, name: String) -> Result<Stmt, LangError> {
        let span = self.span();
        if self.program.action(&name).is_none() {
            return Err(self.error(format!("call of undeclared action `{name}`")));
        }
        self.bump(); // name
        self.expect(TokenKind::LParen)?;
        self.expect(TokenKind::RParen)?;
        let index = if *self.peek() == TokenKind::LBracket {
            self.bump();
            let e = self.expr()?;
            self.expect(TokenKind::RBracket)?;
            Some(e)
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(Stmt::CallAction { name, index, span: span.to(self.prev_span()) })
    }

    fn assign_stmt(&mut self) -> Result<Stmt, LangError> {
        let span = self.span();
        let lhs = self.lvalue()?;
        self.expect(TokenKind::Assign)?;
        if *self.peek() == TokenKind::Hash {
            self.bump();
            self.expect(TokenKind::LParen)?;
            let mut args = vec![self.expr()?];
            while *self.peek() == TokenKind::Comma {
                self.bump();
                args.push(self.expr()?);
            }
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            if args.len() < 2 {
                return Err(LangError::new(
                    "hash(...) needs at least one input and a trailing range argument",
                    span,
                ));
            }
            let range = match args.pop().unwrap() {
                Expr::Int(v) => Size::Const(v),
                Expr::Symbolic(s) => Size::Symbolic(s),
                _ => {
                    return Err(LangError::new(
                        "the last hash(...) argument must be a constant or symbolic range",
                        span,
                    ))
                }
            };
            return Ok(Stmt::HashAssign {
                lhs,
                inputs: args,
                range,
                span: span.to(self.prev_span()),
            });
        }
        let rhs = self.expr()?;
        self.expect(TokenKind::Semi)?;
        Ok(Stmt::Assign { lhs, rhs, span: span.to(self.prev_span()) })
    }

    fn lvalue(&mut self) -> Result<LValue, LangError> {
        match self.peek().clone() {
            TokenKind::Meta => {
                self.bump();
                self.expect(TokenKind::Dot)?;
                let (field, fspan) = self.expect_ident()?;
                if self.program.meta_field(&field).is_none() {
                    return Err(LangError::new(
                        format!("assignment to undeclared metadata field `{field}`"),
                        fspan,
                    ));
                }
                let index = if *self.peek() == TokenKind::LBracket {
                    self.bump();
                    let e = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    Some(e)
                } else {
                    None
                };
                Ok(LValue::Meta { field, index })
            }
            TokenKind::Hdr => {
                self.bump();
                self.expect(TokenKind::Dot)?;
                let (field, fspan) = self.expect_ident()?;
                if self.header_field_bits(&field).is_none() {
                    return Err(LangError::new(
                        format!("assignment to undeclared header field `{field}`"),
                        fspan,
                    ));
                }
                Ok(LValue::Header { field })
            }
            TokenKind::Ident(name) => {
                let nspan = self.span();
                let Some(reg) = self.program.register(&name).cloned() else {
                    return Err(LangError::new(
                        format!("`{name}` is not a declared register"),
                        nspan,
                    ));
                };
                self.bump();
                self.expect(TokenKind::LBracket)?;
                let first = self.expr()?;
                self.expect(TokenKind::RBracket)?;
                if reg.instances.is_some() {
                    self.expect(TokenKind::LBracket)?;
                    let cell = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    Ok(LValue::Register {
                        reg: name,
                        instance: Some(first),
                        cell: Box::new(cell),
                    })
                } else {
                    Ok(LValue::Register { reg: name, instance: None, cell: Box::new(first) })
                }
            }
            other => Err(self.error(format!("expected an assignable place, found {other}"))),
        }
    }

    // -------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == TokenKind::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == TokenKind::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary { op: UnOp::Neg, operand: Box::new(e) })
            }
            TokenKind::Not => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::Unary { op: UnOp::Not, operand: Box::new(e) })
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, LangError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Float(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Meta => {
                self.bump();
                self.expect(TokenKind::Dot)?;
                let (field, fspan) = self.expect_ident()?;
                if self.program.meta_field(&field).is_none() {
                    return Err(LangError::new(
                        format!("read of undeclared metadata field `{field}`"),
                        fspan,
                    ));
                }
                let index = if *self.peek() == TokenKind::LBracket {
                    self.bump();
                    let e = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    Some(Box::new(e))
                } else {
                    None
                };
                Ok(Expr::Meta { field, index })
            }
            TokenKind::Hdr => {
                self.bump();
                self.expect(TokenKind::Dot)?;
                let (field, fspan) = self.expect_ident()?;
                if self.header_field_bits(&field).is_none() {
                    return Err(LangError::new(
                        format!("read of undeclared header field `{field}`"),
                        fspan,
                    ));
                }
                Ok(Expr::Header { field })
            }
            TokenKind::Ident(name) => {
                let nspan = self.span();
                // Resolution order: index variable > symbolic > register read.
                if self.index_scope.contains(&name) {
                    self.bump();
                    return Ok(Expr::IndexVar(name));
                }
                if self.program.symbolic(&name).is_some() {
                    self.bump();
                    return Ok(Expr::Symbolic(name));
                }
                if let Some(reg) = self.program.register(&name).cloned() {
                    self.bump();
                    self.expect(TokenKind::LBracket)?;
                    let first = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    if reg.instances.is_some() {
                        self.expect(TokenKind::LBracket)?;
                        let cell = self.expr()?;
                        self.expect(TokenKind::RBracket)?;
                        return Ok(Expr::RegisterRead {
                            reg: name,
                            instance: Some(Box::new(first)),
                            cell: Box::new(cell),
                        });
                    }
                    return Ok(Expr::RegisterRead {
                        reg: name,
                        instance: None,
                        cell: Box::new(first),
                    });
                }
                Err(LangError::new(
                    format!(
                        "`{name}` is not an index variable, symbolic value, or register \
                         (declare before use)"
                    ),
                    nspan,
                ))
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example (Figure 6), in this dialect.
    pub const CMS_SOURCE: &str = r#"
        symbolic int rows;
        symbolic int cols;
        assume rows >= 1 && rows <= 4;
        assume cols >= 16;
        optimize rows * cols;

        header ipv4 { bit<32> key; }

        struct metadata {
            bit<32>[rows] index;
            bit<32>[rows] count;
            bit<32> min;
        }

        register<bit<32>>[cols][rows] cms;

        action incr()[int i] {
            meta.index[i] = hash(hdr.key, cols);
            cms[i][meta.index[i]] = cms[i][meta.index[i]] + 1;
            meta.count[i] = cms[i][meta.index[i]];
        }

        action set_min()[int i] {
            meta.min = meta.count[i];
        }

        control hash_inc() {
            apply {
                for (i < rows) { incr()[i]; }
            }
        }

        control find_min() {
            apply {
                for (i < rows) {
                    if (meta.count[i] < meta.min) { set_min()[i]; }
                }
            }
        }

        control Main() {
            apply {
                hash_inc.apply();
                find_min.apply();
            }
        }
    "#;

    #[test]
    fn parses_paper_cms_example() {
        let p = parse(CMS_SOURCE).unwrap();
        assert_eq!(p.symbolics.len(), 2);
        assert_eq!(p.assumes.len(), 2);
        assert!(p.optimize.is_some());
        assert_eq!(p.metadata.len(), 3);
        assert_eq!(p.registers.len(), 1);
        assert_eq!(p.actions.len(), 2);
        assert_eq!(p.controls.len(), 3);
        assert_eq!(p.entry_control().unwrap().name, "Main");

        let cms = p.register("cms").unwrap();
        assert_eq!(cms.elem_bits, 32);
        assert_eq!(cms.cells, Size::Symbolic("cols".into()));
        assert_eq!(cms.instances, Some(Size::Symbolic("rows".into())));

        let incr = p.action("incr").unwrap();
        assert!(incr.indexed);
        assert_eq!(incr.body.len(), 3);
        assert!(matches!(incr.body[0], Stmt::HashAssign { .. }));
    }

    #[test]
    fn register_rmw_is_plain_assignment_in_ast() {
        let p = parse(CMS_SOURCE).unwrap();
        let incr = p.action("incr").unwrap();
        match &incr.body[1] {
            Stmt::Assign { lhs: LValue::Register { reg, .. }, rhs, .. } => {
                assert_eq!(reg, "cms");
                assert!(rhs.reads_register());
            }
            other => panic!("expected register assign, got {other:?}"),
        }
    }

    #[test]
    fn undeclared_symbolic_in_size_rejected() {
        let e = parse("register<bit<32>>[nope] r;").unwrap_err();
        assert!(e.message.contains("not a declared symbolic"), "{e}");
    }

    #[test]
    fn undeclared_action_call_rejected() {
        let src = "control c() { apply { foo(); } }";
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("undeclared action"), "{e}");
    }

    #[test]
    fn apply_of_unknown_name_rejected() {
        let src = "control c() { apply { mystery.apply(); } }";
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("neither a declared table nor a declared control"), "{e}");
    }

    #[test]
    fn loop_variable_scoping() {
        // `i` must not be visible outside its loop.
        let src = r#"
            symbolic int n;
            struct metadata { bit<32> x; }
            action a() { meta.x = i; }
        "#;
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("`i` is not"), "{e}");
    }

    #[test]
    fn index_param_shadows_symbolic() {
        let src = r#"
            symbolic int i;
            struct metadata { bit<32>[i] arr; bit<32> x; }
            action a()[int i] { meta.x = meta.arr[i]; }
        "#;
        let p = parse(src).unwrap();
        let a = p.action("a").unwrap();
        match &a.body[0] {
            Stmt::Assign { rhs: Expr::Meta { index: Some(ix), .. }, .. } => {
                assert_eq!(**ix, Expr::IndexVar("i".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn table_parsing() {
        let src = r#"
            header h { bit<32> key; }
            struct metadata { bit<8> hit; }
            action on_hit() { meta.hit = 1; }
            action on_miss() { meta.hit = 0; }
            table cache {
                key = { hdr.key; }
                actions = { on_hit; on_miss; }
                size = 4096;
                default_action = on_miss;
            }
            control Main() { apply { cache.apply(); } }
        "#;
        let p = parse(src).unwrap();
        let t = p.table("cache").unwrap();
        assert_eq!(t.size, 4096);
        assert_eq!(t.actions, vec!["on_hit".to_string(), "on_miss".to_string()]);
        assert_eq!(t.default_action.as_deref(), Some("on_miss"));
        assert!(matches!(p.control("Main").unwrap().body[0], Stmt::ApplyTable { .. }));
    }

    #[test]
    fn operator_precedence() {
        let src = r#"
            symbolic int a;
            symbolic int b;
            optimize 1 + a * b;
        "#;
        let p = parse(src).unwrap();
        match p.optimize.unwrap() {
            Expr::Binary { op: BinOp::Add, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let src = r#"
            symbolic int a;
            assume a >= 1 || a >= 2 && a >= 3;
        "#;
        let p = parse(src).unwrap();
        match &p.assumes[0].expr {
            Expr::Binary { op: BinOp::Or, rhs, .. } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
            struct metadata { bit<32> a; bit<32> b; }
            action noop() { meta.b = 0; }
            control c() {
                apply {
                    if (meta.a < 1) { noop(); }
                    else if (meta.a < 2) { noop(); }
                    else { noop(); }
                }
            }
        "#;
        let p = parse(src).unwrap();
        match &p.control("c").unwrap().body[0] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn plain_p4_program_accepted() {
        let src = r#"
            header h { bit<32> dst; }
            struct metadata { bit<8> port; }
            register<bit<32>>[256] counters;
            action count() {
                counters[meta.port] = counters[meta.port] + 1;
            }
            control Main() { apply { count(); } }
        "#;
        let p = parse(src).unwrap();
        assert!(p.is_plain_p4());
    }

    #[test]
    fn duplicate_declarations_rejected() {
        assert!(parse("symbolic int x; symbolic int x;").unwrap_err().message.contains("redeclared"));
        assert!(parse("struct metadata { bit<1> a; bit<2> a; }")
            .unwrap_err()
            .message
            .contains("redeclared"));
        assert!(parse("register<bit<8>>[4] r; register<bit<8>>[4] r;")
            .unwrap_err()
            .message
            .contains("redeclared"));
    }

    #[test]
    fn duplicate_optimize_rejected() {
        let src = "symbolic int a; optimize a; optimize a;";
        assert!(parse(src).unwrap_err().message.contains("duplicate"));
    }

    #[test]
    fn hash_requires_range_argument() {
        let src = r#"
            header h { bit<32> key; }
            struct metadata { bit<32> idx; }
            action a() { meta.idx = hash(hdr.key); }
        "#;
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("range"), "{e}");
    }

    #[test]
    fn error_spans_point_at_offender() {
        let src = "symbolic int rows;\nassume rows >= nope;";
        let e = parse(src).unwrap_err();
        assert_eq!(e.span.line, 2);
        let rendered = e.render(src);
        assert!(rendered.contains("assume rows >= nope;"));
    }
}

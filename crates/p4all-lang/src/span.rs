//! Source positions for diagnostics.

use std::fmt;

/// A half-open byte range into the source, with the line/column of its
/// start (1-based) for human-readable messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
    pub line: u32,
    pub col: u32,
}

impl Span {
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span { start, end, line, col }
    }

    /// Span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line,
            col: self.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_spans() {
        let a = Span::new(5, 10, 2, 3);
        let b = Span::new(12, 20, 2, 10);
        let m = a.to(b);
        assert_eq!((m.start, m.end), (5, 20));
        assert_eq!((m.line, m.col), (2, 3));
    }

    #[test]
    fn display_line_col() {
        assert_eq!(format!("{}", Span::new(0, 1, 3, 7)), "3:7");
    }
}

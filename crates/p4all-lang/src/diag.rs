//! Unified, span-carrying diagnostics.
//!
//! Every compiler pass reports failures as a [`Diagnostic`]: a severity, a
//! primary message, an optional source [`Span`], and any number of
//! [`Note`]s (each optionally spanned). The type replaces the older
//! `LangError`-or-`String` split so that source anchors survive from the
//! lexer all the way to ILP infeasibility explanations.
//!
//! Two renderers are provided:
//!
//! - [`Diagnostic::render`] — rustc-style text: the offending source line,
//!   a caret underline, and indented notes;
//! - [`Diagnostic::to_json`] — a stable machine-readable schema for
//!   `p4allc --json-diagnostics` (fields: `severity`, `message`, `span`,
//!   `notes`; spans are `{start, end, line, col}` or `null`).

use std::fmt;

use crate::errors::LangError;
use crate::span::Span;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational follow-up (only meaningful attached to an error).
    Note,
    /// Suspicious but compilable.
    Warning,
    /// The program cannot be compiled.
    Error,
    /// A compiler invariant was violated — always a bug in the compiler,
    /// never in the user's program.
    Internal,
}

impl Severity {
    /// Keyword used by both renderers (`error:`, `"severity": "error"`).
    pub fn keyword(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
            Severity::Internal => "internal error",
        }
    }
}

/// A secondary message attached to a [`Diagnostic`].
#[derive(Debug, Clone, PartialEq)]
pub struct Note {
    pub message: String,
    pub span: Option<Span>,
}

/// A structured compiler message, optionally anchored to source.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub message: String,
    pub span: Option<Span>,
    pub notes: Vec<Note>,
}

impl Diagnostic {
    /// A user-facing error without a span (prefer [`Diagnostic::error_at`]).
    pub fn error(message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span: None,
            notes: Vec::new(),
        }
    }

    /// A user-facing error anchored at `span`.
    pub fn error_at(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span: Some(span),
            notes: Vec::new(),
        }
    }

    /// An internal-compiler-error diagnostic: reports a violated invariant
    /// with an apology instead of a panic, so malformed input can never
    /// crash the process.
    pub fn internal(message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Internal,
            message: message.into(),
            span: None,
            notes: vec![Note {
                message: "this is a bug in the P4All compiler, not in your program; \
                          please report it"
                    .to_string(),
                span: None,
            }],
        }
    }

    /// Attach (or replace) the primary span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Append an unspanned note.
    pub fn with_note(mut self, message: impl Into<String>) -> Self {
        self.notes.push(Note { message: message.into(), span: None });
        self
    }

    /// Append a spanned note.
    pub fn with_note_at(mut self, message: impl Into<String>, span: Span) -> Self {
        self.notes.push(Note { message: message.into(), span: Some(span) });
        self
    }

    /// True for `Error` and `Internal` severities.
    pub fn is_error(&self) -> bool {
        matches!(self.severity, Severity::Error | Severity::Internal)
    }

    /// Render rustc-style against the source text:
    ///
    /// ```text
    /// error: symbolic `n` used both as a count and as a size
    ///   --> fw.p4all:4:1
    ///    |
    ///  4 | register<bit<32>>[n] r;
    ///    | ^^^^^^^^
    ///    = note: split it into two symbolic values
    /// ```
    ///
    /// `filename` appears in the `-->` anchor line; pass `"<input>"` when
    /// no path is known. Notes with spans get their own snippet.
    pub fn render(&self, src: &str, filename: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}: {}\n", self.severity.keyword(), self.message));
        if let Some(span) = self.span {
            render_snippet(&mut out, src, filename, span);
        }
        for note in &self.notes {
            match note.span {
                Some(span) => {
                    out.push_str(&format!("note: {}\n", note.message));
                    render_snippet(&mut out, src, filename, span);
                }
                None => out.push_str(&format!("  = note: {}\n", note.message)),
            }
        }
        out
    }

    /// One-line summary (no snippet) — used when the source is unavailable.
    pub fn summary(&self) -> String {
        match self.span {
            Some(s) => format!("{}: {} at {}", self.severity.keyword(), self.message, s),
            None => format!("{}: {}", self.severity.keyword(), self.message),
        }
    }

    /// Stable machine-readable form (one JSON object, no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"severity\":{}", json_str(self.severity.keyword())));
        out.push_str(&format!(",\"message\":{}", json_str(&self.message)));
        out.push_str(",\"span\":");
        out.push_str(&json_span(self.span));
        out.push_str(",\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"message\":{},\"span\":{}}}",
                json_str(&n.message),
                json_span(n.span)
            ));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

impl std::error::Error for Diagnostic {}

impl From<LangError> for Diagnostic {
    fn from(e: LangError) -> Self {
        Diagnostic::error_at(e.message, e.span)
    }
}

/// Render one `--> file:line:col` anchor plus the underlined source line.
fn render_snippet(out: &mut String, src: &str, filename: &str, span: Span) {
    let line_no = span.line.max(1);
    let line_idx = (line_no - 1) as usize;
    let line = src.lines().nth(line_idx).unwrap_or("");
    let col = span.col.saturating_sub(1) as usize;
    let col = col.min(line.len());
    let width = span
        .end
        .saturating_sub(span.start)
        .max(1)
        .min(line.len().saturating_sub(col).max(1));
    let gutter = format!("{line_no}").len().max(2);
    out.push_str(&format!(
        "{:>gutter$} {filename}:{}:{}\n",
        "-->",
        line_no,
        span.col.max(1),
        gutter = gutter + 1
    ));
    out.push_str(&format!("{:>gutter$} |\n", "", gutter = gutter));
    out.push_str(&format!("{line_no:>gutter$} | {line}\n", gutter = gutter));
    out.push_str(&format!(
        "{:>gutter$} | {}{}\n",
        "",
        " ".repeat(col),
        "^".repeat(width),
        gutter = gutter
    ));
}

/// JSON-escape a string (control chars, quotes, backslashes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_span(span: Option<Span>) -> String {
    match span {
        Some(s) => format!(
            "{{\"start\":{},\"end\":{},\"line\":{},\"col\":{}}}",
            s.start, s.end, s.line, s.col
        ),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_anchor_caret_and_notes() {
        let src = "symbolic int rows;\nassume rows <> 4;\n";
        let d = Diagnostic::error_at("unexpected token", Span::new(31, 33, 2, 13))
            .with_note("expected a comparison operator");
        let r = d.render(src, "bad.p4all");
        assert!(r.contains("error: unexpected token"), "{r}");
        assert!(r.contains("bad.p4all:2:13"), "{r}");
        assert!(r.contains("assume rows <> 4;"), "{r}");
        assert!(r.contains("^^"), "{r}");
        assert!(r.contains("= note: expected a comparison operator"), "{r}");
    }

    #[test]
    fn internal_diagnostic_carries_bug_note() {
        let d = Diagnostic::internal("placement matrix lost a group");
        assert_eq!(d.severity, Severity::Internal);
        assert!(d.render("", "<input>").contains("bug in the P4All compiler"));
    }

    #[test]
    fn json_schema_is_stable() {
        let d = Diagnostic::error_at("bad \"thing\"", Span::new(0, 3, 1, 1))
            .with_note("try\nharder");
        let j = d.to_json();
        assert_eq!(
            j,
            "{\"severity\":\"error\",\"message\":\"bad \\\"thing\\\"\",\
             \"span\":{\"start\":0,\"end\":3,\"line\":1,\"col\":1},\
             \"notes\":[{\"message\":\"try\\nharder\",\"span\":null}]}"
        );
    }

    #[test]
    fn lang_error_converts() {
        let e = LangError::new("boom", Span::new(0, 1, 4, 2));
        let d: Diagnostic = e.into();
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.unwrap().line, 4);
        assert_eq!(format!("{d}"), "error: boom at 4:2");
    }

    #[test]
    fn spanned_note_renders_its_own_snippet() {
        let src = "line one\nline two\n";
        let d = Diagnostic::error_at("primary", Span::new(0, 4, 1, 1))
            .with_note_at("secondary", Span::new(9, 13, 2, 1));
        let r = d.render(src, "f");
        assert!(r.contains("note: secondary"), "{r}");
        assert!(r.matches("| line").count() >= 2, "{r}");
    }

    #[test]
    fn render_handles_out_of_range_spans() {
        // Span pointing past EOF must not panic.
        let d = Diagnostic::error_at("eof", Span::new(100, 120, 99, 50));
        let r = d.render("short\n", "f");
        assert!(r.contains("error: eof"));
    }
}
